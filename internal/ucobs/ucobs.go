// Package ucobs implements uCOBS (paper §5): a general-purpose datagram
// delivery service atop TCP or uTCP streams.
//
// Each datagram is COBS-encoded (so its body contains no zero byte) and
// written to the stream as 0x00 || cobs(msg) || 0x00 in a single
// application write. Because records are delimited by a reserved byte value
// on *both* ends (§5.3), a receiver holding an arbitrary fragment of the
// stream can recognize and deliver any record that lies entirely within the
// fragment — no preceding stream context needed — which is exactly what
// out-of-order uTCP delivery requires, and it remains correct when
// middleboxes re-segment the stream (paper Figure 4).
//
// On an unordered (uTCP) connection, records are delivered the moment all
// their bytes arrive; on a plain TCP connection uCOBS degrades gracefully
// to in-order record delivery. Either way each record is delivered exactly
// once.
package ucobs

import (
	"errors"
	"fmt"
	"time"

	"minion/internal/buf"
	"minion/internal/cobs"
	"minion/internal/queue"
	"minion/internal/stream"
	"minion/internal/tcp"
)

// Marker is the reserved delimiter byte value.
const Marker byte = 0x00

// DefaultMaxMessageSize bounds decoded datagram size (guards the decoder
// against corrupt length runs).
const DefaultMaxMessageSize = 256 * 1024

// Errors.
var (
	ErrTooLarge = errors.New("ucobs: message exceeds maximum size")
	ErrClosed   = errors.New("ucobs: connection closed")
)

// Options mirror the uTCP send header (paper §4.2/§7).
type Options struct {
	// Priority tag: lower value = higher priority (0 is highest).
	Priority uint32
	// Squash replaces queued untransmitted messages with the same tag.
	Squash bool
}

// Stats counts protocol activity. CPUEncode/CPUDecode accumulate the real
// processor time spent in COBS encoding and in record scanning/decoding —
// the "user time" the paper's Figure 6(a) reports. CPUDecode covers marker
// scanning plus COBS decoding and excludes time spent in the application's
// delivery callback, uniformly across the ordered, assembler and raw-scan
// receive paths.
type Stats struct {
	MessagesSent      int
	MessagesDelivered int
	DeliveredOOO      int // delivered from out-of-order fragments
	BytesEncoded      int64
	BytesDecoded      int64
	CorruptRecords    int
	CPUEncode         time.Duration
	CPUDecode         time.Duration
}

// Conn is a uCOBS datagram connection bound to a TCP or uTCP stream.
type Conn struct {
	tc        tcp.Stream
	unordered bool

	// Unordered receive state: local reassembly of uTCP fragments plus the
	// delivered-interval set that enforces exactly-once record delivery.
	// Delivered intervals cover whole frames (markers included), so
	// adjacent frames coalesce and the set's first extent is the
	// fully-consumed stream prefix.
	asm       *stream.Assembler
	delivered stream.IntervalSet

	// Ordered (fallback) receive state: streaming COBS parser.
	parseBuf []byte
	inRecord bool

	maxMsg    int
	onMessage func(msg []byte)
	recvQ     queue.FIFO[[]byte]
	stats     Stats

	readBuf []byte // ordered-mode drain buffer, allocated once
}

// New binds a uCOBS connection to tc — the simulated uTCP substrate or a
// real-socket wire stream, anything satisfying tcp.Stream. If tc has the
// SO_UNORDERED receive path enabled the out-of-order delivery machinery is
// used; otherwise uCOBS falls back to in-order parsing (paper §5.2
// "Reception").
func New(tc tcp.Stream) *Conn {
	c := &Conn{
		tc:        tc,
		unordered: tc.Unordered(),
		asm:       stream.NewAssembler(),
		maxMsg:    DefaultMaxMessageSize,
	}
	tc.OnReadable(c.pump)
	return c
}

// Transport returns the underlying stream transport.
func (c *Conn) Transport() tcp.Stream { return c.tc }

// Stats returns a copy of the counters.
func (c *Conn) Stats() Stats { return c.stats }

// SetMaxMessageSize overrides the decoded-size bound.
func (c *Conn) SetMaxMessageSize(n int) { c.maxMsg = n }

// OnMessage registers the delivery callback. Messages delivered while no
// callback is registered queue for Recv.
//
// Ownership: msg is a view of a pooled buffer that is recycled when the
// callback returns. Callbacks that keep the bytes must copy them
// (append([]byte(nil), msg...)).
func (c *Conn) OnMessage(fn func(msg []byte)) { c.onMessage = fn }

// Recv pops a queued message; ok is false when none is pending. The
// returned slice is owned by the caller.
func (c *Conn) Recv() (msg []byte, ok bool) {
	return c.recvQ.Pop()
}

// Pending returns the number of queued received messages.
func (c *Conn) Pending() int { return c.recvQ.Len() }

// Send COBS-encodes msg, frames it with leading and trailing markers, and
// writes it as one application write so uTCP send-side reordering preserves
// the delimiting invariant (paper §5.2 "Transmission").
func (c *Conn) Send(msg []byte, opt Options) error {
	if len(msg) > c.maxMsg {
		return ErrTooLarge
	}
	t0 := time.Now()
	// Encode straight into a pooled buffer sized by the COBS worst case and
	// hand it to the transport without copying: the frame becomes the
	// segment payload via refcounted slicing all the way to the wire.
	fb := buf.GetCap(2 + cobs.MaxEncodedLen(len(msg)))
	s := fb.Bytes()[:0]
	s = append(s, Marker)
	s = cobs.Encode(s, msg)
	s = append(s, Marker)
	fb.SetLen(len(s))
	c.stats.CPUEncode += time.Since(t0)
	c.stats.BytesEncoded += int64(len(s))

	_, err := c.tc.WriteMsgBuf(fb, tcp.WriteOptions{Tag: opt.Priority, Squash: opt.Squash})
	if err != nil {
		return fmt.Errorf("ucobs: send: %w", err)
	}
	c.stats.MessagesSent++
	return nil
}

// SendBufAvailable reports the transport send-buffer space (frame overhead
// not included).
func (c *Conn) SendBufAvailable() int { return c.tc.SendBufAvailable() }

// Close closes the underlying stream.
func (c *Conn) Close() { c.tc.Close() }

// pump drains the transport and extracts deliverable records.
func (c *Conn) pump() {
	if c.unordered {
		c.pumpUnordered()
	} else {
		c.pumpOrdered()
	}
}

func (c *Conn) pumpUnordered() {
	for {
		d, err := c.tc.ReadUnordered()
		if err != nil {
			return
		}
		cumulative := uint64(0)
		if d.InOrder {
			cumulative = d.Offset + uint64(len(d.Data))
		}
		if c.asm.BufferedBytes() == 0 {
			// Fast path: no partial records are pending, so complete
			// records in this fragment can be delivered straight from the
			// delivery's (zero-copy) bytes; only an incomplete head or
			// tail run enters the reassembly buffer. In the steady state —
			// each frame one segment — nothing is ever copied into the
			// assembler.
			c.scanRaw(d.Offset, d.Data, cumulative)
		} else {
			ext := c.asm.Insert(d.Offset, d.Data)
			// Incremental scan: new bytes can only complete a record whose
			// start lies in the undelivered gap below the insert point, so the
			// scan window begins at the last delivered-frame boundary at or
			// below the new data — everything earlier was consumed by prior
			// deliveries. This keeps per-segment scan work proportional to
			// outstanding (undelivered) data instead of the whole fragment.
			scan := ext
			if boundary := c.delivered.PrevEnd(d.Offset); boundary > scan.Start {
				if boundary >= ext.End {
					boundary = ext.End
				}
				scan.Start = boundary
			}
			c.scanExtent(scan, cumulative)
		}
		d.Release()
	}
}

// scanRaw delivers every complete record lying wholly inside the fragment
// data (stream offset base) without going through the assembler, then
// banks whatever the scan could not consume — an incomplete head run
// (missing its leading context) or tail run (trailing marker not yet
// received) — into the assembler for the usual extent scan to finish
// later. Already-delivered regions are skipped via the interval set, so
// the at-least-once uTCP redeliveries stay exactly-once here.
func (c *Conn) scanRaw(base uint64, data []byte, cumulative uint64) {
	t0 := time.Now()
	// Head run: bytes before the first marker belong to a record whose
	// leading marker is in a fragment not yet seen — bank them unless the
	// region was already consumed by an earlier delivery. The run's
	// closing marker (data[first], when present) is banked with it: it is
	// that record's trailing delimiter, and without it the record could
	// never complete in the assembler once its missing head arrives.
	first := 0
	for first < len(data) && data[first] != Marker {
		first++
	}
	if first > 0 && !c.delivered.Contains(base, base+uint64(first)) {
		keep := first
		if keep < len(data) {
			keep++ // include the closing marker
		}
		c.asm.Insert(base, data[:keep])
	}
	i := first
	consumed := first // bytes in [first, consumed) are fully handled
	for i < len(data) {
		if data[i] != Marker {
			i++
			continue
		}
		j := i + 1
		for j < len(data) && data[j] != Marker {
			j++
		}
		if j >= len(data) {
			break // run reaches fragment end: trailing marker not yet seen
		}
		if j > i+1 {
			start, end := base+uint64(i+1), base+uint64(j)
			if !c.delivered.Contains(start, end) {
				c.stats.CPUDecode += time.Since(t0)
				c.deliverRecord(data[i+1:j], start, end, cumulative)
				t0 = time.Now()
			}
		}
		i = j
		consumed = j
	}
	if first == 0 && consumed > 0 && !c.delivered.Contains(base, base+1) {
		// The fragment's first byte is a marker that a completed run then
		// skipped past. It may be the trailing delimiter of a record whose
		// body lies in fragments not yet seen — bank the single byte, or
		// that record could never complete in the assembler. (If its record
		// was already delivered, the delivered set covers the byte and it
		// is skipped.)
		c.asm.Insert(base, data[:1])
	}
	if consumed < len(data) && !c.delivered.Contains(base+uint64(consumed), base+uint64(len(data))) {
		// Tail run still waiting for its trailing marker (the kept byte at
		// consumed is the run's leading marker).
		c.asm.Insert(base+uint64(consumed), data[consumed:])
	}
	c.stats.CPUDecode += time.Since(t0)
	c.gc()
}

// scanExtent looks for complete records inside the (merged) fragment ext:
// maximal nonzero runs whose bounding markers are both inside the fragment.
// cumulative is the end of the in-order prefix (0 if this was an
// out-of-order fragment) and distinguishes in-order deliveries for stats.
func (c *Conn) scanExtent(ext stream.Extent, cumulative uint64) {
	t0 := time.Now()
	data, ok := c.asm.Bytes(ext)
	if !ok {
		c.stats.CPUDecode += time.Since(t0)
		return
	}
	base := ext.Start
	i := 0
	for i < len(data) {
		if data[i] != Marker {
			i++
			continue
		}
		// data[i] is a marker: find the next marker.
		j := i + 1
		for j < len(data) && data[j] != Marker {
			j++
		}
		if j >= len(data) {
			break // run reaches fragment end: trailing marker not yet seen
		}
		if j > i+1 {
			start, end := base+uint64(i+1), base+uint64(j)
			if !c.delivered.Contains(start, end) {
				// deliverRecord times its own decode; the application
				// callback is excluded from CPUDecode on every path.
				c.stats.CPUDecode += time.Since(t0)
				c.deliverRecord(data[i+1:j], start, end, cumulative)
				t0 = time.Now()
			}
		}
		i = j
	}
	c.stats.CPUDecode += time.Since(t0)
	c.gc()
}

func (c *Conn) deliverRecord(enc []byte, start, end, cumulative uint64) {
	// Mark the whole frame consumed, bounding markers included: frame i's
	// trailing marker and frame i+1's leading marker are distinct bytes,
	// so consecutive frames' ranges [start-1, end+1) tile the stream
	// exactly and coalesce in the interval set.
	c.delivered.Add(start-1, end+1)
	// COBS decoding never produces more bytes than it consumes, so a
	// pooled buffer of len(enc) holds the message and is recycled after
	// the delivery callback returns.
	t0 := time.Now()
	mb := buf.GetCap(len(enc))
	msg, err := cobs.Decode(mb.Bytes()[:0], enc)
	c.stats.CPUDecode += time.Since(t0)
	if err != nil || len(msg) > c.maxMsg {
		// A record that fails to decode means sender/stream corruption;
		// drop it (TCP's checksum makes this effectively unreachable, but
		// defensive decoding keeps one bad frame from wedging the scan).
		mb.Release()
		c.stats.CorruptRecords++
		return
	}
	mb.SetLen(len(msg))
	c.stats.MessagesDelivered++
	c.stats.BytesDecoded += int64(len(msg))
	if cumulative == 0 || end > cumulative {
		// The record was completed by an out-of-order fragment: it was
		// delivered ahead of the cumulative point, i.e. before standard
		// TCP could have delivered it.
		c.stats.DeliveredOOO++
	}
	c.deliver(mb)
}

// deliver hands a decoded message (owned pooled buffer) to the
// application: callback deliveries recycle the buffer when the callback
// returns; queued deliveries detach it so Recv hands out caller-owned
// bytes.
func (c *Conn) deliver(mb *buf.Buffer) {
	if c.onMessage != nil {
		c.onMessage(mb.Bytes())
		mb.Release()
	} else {
		c.recvQ.Push(mb.Detach())
	}
}

// gc discards assembler data over the fully-delivered stream prefix: every
// byte below the first delivered extent's end belongs to frames already
// handed to the application, and the next frame's leading marker lies at or
// beyond that boundary.
func (c *Conn) gc() {
	exts := c.delivered.Extents()
	if len(exts) > 0 && exts[0].Start == 0 {
		c.asm.Discard(exts[0].End)
	}
}

// pumpOrdered implements the fallback path on plain TCP: a streaming parser
// that skips to a marker, collects the nonzero run, and decodes at the
// closing marker.
func (c *Conn) pumpOrdered() {
	if c.readBuf == nil {
		c.readBuf = make([]byte, 32*1024)
	}
	for {
		n, err := c.tc.Read(c.readBuf)
		if n == 0 || err != nil {
			return
		}
		t0 := time.Now()
		for _, b := range c.readBuf[:n] {
			if b == Marker {
				if c.inRecord && len(c.parseBuf) > 0 {
					mb := buf.GetCap(len(c.parseBuf))
					msg, derr := cobs.Decode(mb.Bytes()[:0], c.parseBuf)
					if derr != nil || len(msg) > c.maxMsg {
						mb.Release()
						c.stats.CorruptRecords++
					} else {
						mb.SetLen(len(msg))
						c.stats.MessagesDelivered++
						c.stats.BytesDecoded += int64(len(msg))
						// Application callback time is excluded from
						// CPUDecode on every path.
						c.stats.CPUDecode += time.Since(t0)
						c.deliver(mb)
						t0 = time.Now()
					}
				}
				c.parseBuf = c.parseBuf[:0]
				c.inRecord = true
				continue
			}
			if c.inRecord {
				c.parseBuf = append(c.parseBuf, b)
			}
			// Bytes before the first marker ever seen are skipped: they
			// belong to a record whose start we missed.
		}
		c.stats.CPUDecode += time.Since(t0)
	}
}
