// Package ucobs implements uCOBS (paper §5): a general-purpose datagram
// delivery service atop TCP or uTCP streams.
//
// Each datagram is COBS-encoded (so its body contains no zero byte) and
// written to the stream as 0x00 || cobs(msg) || 0x00 in a single
// application write. Because records are delimited by a reserved byte value
// on *both* ends (§5.3), a receiver holding an arbitrary fragment of the
// stream can recognize and deliver any record that lies entirely within the
// fragment — no preceding stream context needed — which is exactly what
// out-of-order uTCP delivery requires, and it remains correct when
// middleboxes re-segment the stream (paper Figure 4).
//
// On an unordered (uTCP) connection, records are delivered the moment all
// their bytes arrive; on a plain TCP connection uCOBS degrades gracefully
// to in-order record delivery. Either way each record is delivered exactly
// once.
package ucobs

import (
	"errors"
	"fmt"
	"time"

	"minion/internal/cobs"
	"minion/internal/stream"
	"minion/internal/tcp"
)

// Marker is the reserved delimiter byte value.
const Marker byte = 0x00

// DefaultMaxMessageSize bounds decoded datagram size (guards the decoder
// against corrupt length runs).
const DefaultMaxMessageSize = 256 * 1024

// Errors.
var (
	ErrTooLarge = errors.New("ucobs: message exceeds maximum size")
	ErrClosed   = errors.New("ucobs: connection closed")
)

// Options mirror the uTCP send header (paper §4.2/§7).
type Options struct {
	// Priority tag: lower value = higher priority (0 is highest).
	Priority uint32
	// Squash replaces queued untransmitted messages with the same tag.
	Squash bool
}

// Stats counts protocol activity. CPUEncode/CPUDecode accumulate the real
// processor time spent in COBS encoding and in record scanning/decoding —
// the "user time" the paper's Figure 6(a) reports.
type Stats struct {
	MessagesSent      int
	MessagesDelivered int
	DeliveredOOO      int // delivered from out-of-order fragments
	BytesEncoded      int64
	BytesDecoded      int64
	CorruptRecords    int
	CPUEncode         time.Duration
	CPUDecode         time.Duration
}

// Conn is a uCOBS datagram connection bound to a TCP or uTCP stream.
type Conn struct {
	tc        *tcp.Conn
	unordered bool

	// Unordered receive state: local reassembly of uTCP fragments plus the
	// delivered-interval set that enforces exactly-once record delivery.
	// Delivered intervals cover whole frames (markers included), so
	// adjacent frames coalesce and the set's first extent is the
	// fully-consumed stream prefix.
	asm       *stream.Assembler
	delivered stream.IntervalSet

	// Ordered (fallback) receive state: streaming COBS parser.
	parseBuf []byte
	inRecord bool

	maxMsg    int
	onMessage func(msg []byte)
	recvQ     [][]byte
	stats     Stats

	encBuf []byte
}

// New binds a uCOBS connection to tc. If tc has the SO_UNORDERED receive
// path enabled the out-of-order delivery machinery is used; otherwise uCOBS
// falls back to in-order parsing (paper §5.2 "Reception").
func New(tc *tcp.Conn) *Conn {
	c := &Conn{
		tc:        tc,
		unordered: tc.Config().Unordered,
		asm:       stream.NewAssembler(),
		maxMsg:    DefaultMaxMessageSize,
	}
	tc.OnReadable(c.pump)
	return c
}

// Transport returns the underlying TCP connection.
func (c *Conn) Transport() *tcp.Conn { return c.tc }

// Stats returns a copy of the counters.
func (c *Conn) Stats() Stats { return c.stats }

// SetMaxMessageSize overrides the decoded-size bound.
func (c *Conn) SetMaxMessageSize(n int) { c.maxMsg = n }

// OnMessage registers the delivery callback. Messages delivered while no
// callback is registered queue for Recv.
func (c *Conn) OnMessage(fn func(msg []byte)) { c.onMessage = fn }

// Recv pops a queued message; ok is false when none is pending.
func (c *Conn) Recv() (msg []byte, ok bool) {
	if len(c.recvQ) == 0 {
		return nil, false
	}
	msg = c.recvQ[0]
	c.recvQ = c.recvQ[1:]
	return msg, true
}

// Pending returns the number of queued received messages.
func (c *Conn) Pending() int { return len(c.recvQ) }

// Send COBS-encodes msg, frames it with leading and trailing markers, and
// writes it as one application write so uTCP send-side reordering preserves
// the delimiting invariant (paper §5.2 "Transmission").
func (c *Conn) Send(msg []byte, opt Options) error {
	if len(msg) > c.maxMsg {
		return ErrTooLarge
	}
	t0 := time.Now()
	c.encBuf = c.encBuf[:0]
	c.encBuf = append(c.encBuf, Marker)
	c.encBuf = cobs.Encode(c.encBuf, msg)
	c.encBuf = append(c.encBuf, Marker)
	c.stats.CPUEncode += time.Since(t0)
	c.stats.BytesEncoded += int64(len(c.encBuf))

	_, err := c.tc.WriteMsg(c.encBuf, tcp.WriteOptions{Tag: opt.Priority, Squash: opt.Squash})
	if err != nil {
		return fmt.Errorf("ucobs: send: %w", err)
	}
	c.stats.MessagesSent++
	return nil
}

// SendBufAvailable reports the transport send-buffer space (frame overhead
// not included).
func (c *Conn) SendBufAvailable() int { return c.tc.SendBufAvailable() }

// Close closes the underlying stream.
func (c *Conn) Close() { c.tc.Close() }

// pump drains the transport and extracts deliverable records.
func (c *Conn) pump() {
	if c.unordered {
		c.pumpUnordered()
	} else {
		c.pumpOrdered()
	}
}

func (c *Conn) pumpUnordered() {
	for {
		d, err := c.tc.ReadUnordered()
		if err != nil {
			return
		}
		cumulative := uint64(0)
		if d.InOrder {
			cumulative = d.Offset + uint64(len(d.Data))
		}
		ext := c.asm.Insert(d.Offset, d.Data)
		// Incremental scan: new bytes can only complete a record whose
		// start lies in the undelivered gap below the insert point, so the
		// scan window begins at the last delivered-frame boundary at or
		// below the new data — everything earlier was consumed by prior
		// deliveries. This keeps per-segment scan work proportional to
		// outstanding (undelivered) data instead of the whole fragment.
		scan := ext
		if boundary := c.delivered.PrevEnd(d.Offset); boundary > scan.Start {
			if boundary >= ext.End {
				boundary = ext.End
			}
			scan.Start = boundary
		}
		c.scanExtent(scan, cumulative)
	}
}

// scanExtent looks for complete records inside the (merged) fragment ext:
// maximal nonzero runs whose bounding markers are both inside the fragment.
// cumulative is the end of the in-order prefix (0 if this was an
// out-of-order fragment) and distinguishes in-order deliveries for stats.
func (c *Conn) scanExtent(ext stream.Extent, cumulative uint64) {
	t0 := time.Now()
	defer func() { c.stats.CPUDecode += time.Since(t0) }()
	data, ok := c.asm.Bytes(ext)
	if !ok {
		return
	}
	base := ext.Start
	i := 0
	for i < len(data) {
		if data[i] != Marker {
			i++
			continue
		}
		// data[i] is a marker: find the next marker.
		j := i + 1
		for j < len(data) && data[j] != Marker {
			j++
		}
		if j >= len(data) {
			break // run reaches fragment end: trailing marker not yet seen
		}
		if j > i+1 {
			start, end := base+uint64(i+1), base+uint64(j)
			if !c.delivered.Contains(start, end) {
				c.deliverRecord(data[i+1:j], start, end, cumulative)
			}
		}
		i = j
	}
	c.gc()
}

func (c *Conn) deliverRecord(enc []byte, start, end, cumulative uint64) {
	// Mark the whole frame consumed, bounding markers included: frame i's
	// trailing marker and frame i+1's leading marker are distinct bytes,
	// so consecutive frames' ranges [start-1, end+1) tile the stream
	// exactly and coalesce in the interval set.
	c.delivered.Add(start-1, end+1)
	msg, err := cobs.Decode(nil, enc)
	if err != nil || len(msg) > c.maxMsg {
		// A record that fails to decode means sender/stream corruption;
		// drop it (TCP's checksum makes this effectively unreachable, but
		// defensive decoding keeps one bad frame from wedging the scan).
		c.stats.CorruptRecords++
		return
	}
	c.stats.MessagesDelivered++
	c.stats.BytesDecoded += int64(len(msg))
	if cumulative == 0 || end > cumulative {
		// The record was completed by an out-of-order fragment: it was
		// delivered ahead of the cumulative point, i.e. before standard
		// TCP could have delivered it.
		c.stats.DeliveredOOO++
	}
	if c.onMessage != nil {
		c.onMessage(msg)
	} else {
		c.recvQ = append(c.recvQ, msg)
	}
}

// gc discards assembler data over the fully-delivered stream prefix: every
// byte below the first delivered extent's end belongs to frames already
// handed to the application, and the next frame's leading marker lies at or
// beyond that boundary.
func (c *Conn) gc() {
	exts := c.delivered.Extents()
	if len(exts) > 0 && exts[0].Start == 0 {
		c.asm.Discard(exts[0].End)
	}
}

// pumpOrdered implements the fallback path on plain TCP: a streaming parser
// that skips to a marker, collects the nonzero run, and decodes at the
// closing marker.
func (c *Conn) pumpOrdered() {
	buf := make([]byte, 32*1024)
	for {
		n, err := c.tc.Read(buf)
		if n == 0 || err != nil {
			return
		}
		t0 := time.Now()
		for _, b := range buf[:n] {
			if b == Marker {
				if c.inRecord && len(c.parseBuf) > 0 {
					msg, derr := cobs.Decode(nil, c.parseBuf)
					if derr != nil || len(msg) > c.maxMsg {
						c.stats.CorruptRecords++
					} else {
						c.stats.MessagesDelivered++
						c.stats.BytesDecoded += int64(len(msg))
						if c.onMessage != nil {
							c.onMessage(msg)
						} else {
							c.recvQ = append(c.recvQ, msg)
						}
					}
				}
				c.parseBuf = c.parseBuf[:0]
				c.inRecord = true
				continue
			}
			if c.inRecord {
				c.parseBuf = append(c.parseBuf, b)
			}
			// Bytes before the first marker ever seen are skipped: they
			// belong to a record whose start we missed.
		}
		c.stats.CPUDecode += time.Since(t0)
	}
}
