package buf

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Governor is the pool-wide resource ledger the overload-protection
// machinery hangs off: an explicit byte account with a hard limit, a
// high/low watermark pair, and per-tenant quotas. It does not sit inside
// Get/Release — the arena pool stays policy-free and allocation-hot —
// but is charged explicitly by the layers that pin pooled memory for
// unbounded time: wire connections meter their queued send and receive
// bytes through Adjust, and admission points (relays, listeners) ask for
// headroom through Reserve, which fails with a typed ErrOverload instead
// of letting demand balloon the pool.
//
// Two account styles coexist on the one ledger on purpose:
//
//   - Adjust is unconditional. The wire layer must keep its own
//     invariants (a connection's queued bytes are already bounded by its
//     SendBufBytes/RecvBufBytes) and cannot refuse bytes mid-stream, so
//     it records usage without asking. Aggregate pressure from these
//     charges is what moves the watermarks.
//   - Reserve is conditional. Work that can be refused before it starts
//     — admitting a datagram into a relay, growing a tenant's in-flight
//     window — reserves against the hard limit and handles ErrOverload.
//
// Crossing the high watermark flips Overloaded() on (and fires Notify
// callbacks); it latches until usage drains below the low watermark, so
// admission control does not flap at the boundary. Listeners configured
// with this governor pause accepting while Overloaded() holds.
type Governor struct {
	limit int64
	high  int64
	low   int64

	used atomic.Int64
	over atomic.Bool // fast-path mirror of overState

	rejects   atomic.Uint64
	overloads atomic.Uint64

	mu        sync.Mutex // serializes watermark transitions + registries
	overState bool
	notify    []func(over bool)
	tenants   map[string]*Tenant
}

// GovernorConfig parameterizes a Governor.
type GovernorConfig struct {
	// LimitBytes is the hard budget Reserve enforces. Zero means no hard
	// limit (Reserve always succeeds); watermarks still require it, so a
	// zero limit also disables overload detection.
	LimitBytes int64
	// HighWaterFrac is the fraction of LimitBytes at which Overloaded()
	// flips on (default 0.8).
	HighWaterFrac float64
	// LowWaterFrac is the fraction of LimitBytes usage must drain below
	// before Overloaded() clears (default 0.6). Clamped below
	// HighWaterFrac.
	LowWaterFrac float64
}

// NewGovernor builds a Governor. The zero-value config yields an
// unlimited ledger that meters usage but never overloads or rejects.
func NewGovernor(cfg GovernorConfig) *Governor {
	g := &Governor{limit: cfg.LimitBytes, tenants: make(map[string]*Tenant)}
	if g.limit > 0 {
		hf, lf := cfg.HighWaterFrac, cfg.LowWaterFrac
		if hf <= 0 || hf > 1 {
			hf = 0.8
		}
		if lf <= 0 || lf >= hf {
			lf = hf * 0.75
		}
		g.high = int64(float64(g.limit) * hf)
		g.low = int64(float64(g.limit) * lf)
		if g.high < 1 {
			g.high = 1
		}
	}
	return g
}

// ErrOverload is the sentinel all quota and budget rejections wrap:
// errors.Is(err, ErrOverload) identifies "refused for resource pressure"
// across the global ledger and every tenant quota. The concrete error is
// an *OverloadError naming the exhausted resource.
var ErrOverload = errors.New("buf: resource budget exceeded")

// OverloadError is the typed rejection Reserve and the tenant quotas
// return; it wraps ErrOverload.
type OverloadError struct {
	Resource string // "memory", "tenant-conns", "tenant-bytes"
	Tenant   string // empty for the global ledger
	Limit    int64  // the budget that was exhausted
}

func (e *OverloadError) Error() string {
	if e.Tenant == "" {
		return fmt.Sprintf("buf: %s budget exceeded (limit %d): %v", e.Resource, e.Limit, ErrOverload)
	}
	return fmt.Sprintf("buf: tenant %q %s quota exceeded (limit %d): %v", e.Tenant, e.Resource, e.Limit, ErrOverload)
}

func (e *OverloadError) Unwrap() error { return ErrOverload }

// Adjust records d bytes of usage (negative to release) without
// admission: the metering entry point for layers that bound themselves
// and only need their pressure to reach the watermarks. Safe from any
// goroutine; nil-receiver safe so callers can charge unconditionally.
func (g *Governor) Adjust(d int64) {
	if g == nil || d == 0 {
		return
	}
	u := g.used.Add(d)
	g.checkWatermarks(u)
}

// Reserve asks for n bytes of headroom against the hard limit,
// returning a typed *OverloadError (wrapping ErrOverload) when the
// ledger cannot take it. A successful Reserve must be paired with
// Release. Safe from any goroutine; a nil Governor admits everything.
func (g *Governor) Reserve(n int64) error {
	if g == nil || n <= 0 {
		return nil
	}
	for {
		u := g.used.Load()
		if g.limit > 0 && u+n > g.limit {
			g.rejects.Add(1)
			return &OverloadError{Resource: "memory", Limit: g.limit}
		}
		if g.used.CompareAndSwap(u, u+n) {
			g.checkWatermarks(u + n)
			return nil
		}
	}
}

// Release returns n reserved bytes to the ledger.
func (g *Governor) Release(n int64) { g.Adjust(-n) }

// Used returns the current charged bytes.
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Overloaded reports whether usage crossed the high watermark and has
// not yet drained below the low one — the latched pressure signal
// admission control keys off. One atomic load; nil-receiver safe.
func (g *Governor) Overloaded() bool { return g != nil && g.over.Load() }

// Notify registers fn to run on every overload transition (true when the
// high watermark is crossed, false when usage drains below the low one).
// Callbacks run on whatever goroutine performed the crossing charge —
// possibly under a connection's queue lock — and must not block.
func (g *Governor) Notify(fn func(over bool)) {
	if g == nil || fn == nil {
		return
	}
	g.mu.Lock()
	g.notify = append(g.notify, fn)
	g.mu.Unlock()
}

// checkWatermarks latches overload transitions. The atomic pre-check
// keeps the common no-transition case to one load; the mutex serializes
// actual transitions so Notify observers see a strict alternation.
func (g *Governor) checkWatermarks(u int64) {
	if g.high <= 0 {
		return
	}
	if g.over.Load() {
		if u > g.low {
			return
		}
	} else if u < g.high {
		return
	}
	var fire []func(bool)
	var to bool
	g.mu.Lock()
	u = g.used.Load()
	switch {
	case !g.overState && u >= g.high:
		g.overState = true
		g.over.Store(true)
		g.overloads.Add(1)
		to = true
		fire = append(fire, g.notify...)
	case g.overState && u <= g.low:
		g.overState = false
		g.over.Store(false)
		to = false
		fire = append(fire, g.notify...)
	}
	g.mu.Unlock()
	for _, fn := range fire {
		fn(to)
	}
}

// GovernorStats is a point-in-time ledger snapshot.
type GovernorStats struct {
	Used       int64
	Limit      int64
	HighWater  int64
	LowWater   int64
	Overloaded bool
	// Overloads counts high-watermark crossings since construction.
	Overloads uint64
	// Rejects counts Reserve refusals (global ledger only; tenant quota
	// refusals count in TenantStats).
	Rejects uint64
}

// Stats snapshots the governor.
func (g *Governor) Stats() GovernorStats {
	if g == nil {
		return GovernorStats{}
	}
	return GovernorStats{
		Used:       g.used.Load(),
		Limit:      g.limit,
		HighWater:  g.high,
		LowWater:   g.low,
		Overloaded: g.over.Load(),
		Overloads:  g.overloads.Load(),
		Rejects:    g.rejects.Load(),
	}
}

// TenantLimits caps one tenant's footprint. Zero fields are unlimited.
type TenantLimits struct {
	// MaxConns bounds concurrently admitted connections.
	MaxConns int64
	// MaxBytes bounds reserved in-flight bytes.
	MaxBytes int64
}

// Tenant is one client account under the governor: a connection count
// and an in-flight byte reservation, each checked against the tenant's
// quota. Tenant byte reservations are quota bookkeeping only — they do
// not double-charge the global ledger, which already meters the real
// queue bytes through the wire layer's Adjust calls.
type Tenant struct {
	name string
	lim  TenantLimits

	conns   atomic.Int64
	bytes   atomic.Int64
	rejects atomic.Uint64
}

// Tenant returns the named tenant account, creating it with lim on
// first use (an existing tenant keeps its original limits).
func (g *Governor) Tenant(name string, lim TenantLimits) *Tenant {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.tenants[name]; ok {
		return t
	}
	t := &Tenant{name: name, lim: lim}
	g.tenants[name] = t
	return t
}

// Tenants snapshots every registered tenant account.
func (g *Governor) Tenants() []*Tenant {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		out = append(out, t)
	}
	return out
}

// Name returns the tenant's account name.
func (t *Tenant) Name() string { return t.name }

// AcquireConn admits one connection against the tenant's MaxConns
// quota; pair with ReleaseConn.
func (t *Tenant) AcquireConn() error {
	for {
		c := t.conns.Load()
		if t.lim.MaxConns > 0 && c+1 > t.lim.MaxConns {
			t.rejects.Add(1)
			return &OverloadError{Resource: "tenant-conns", Tenant: t.name, Limit: t.lim.MaxConns}
		}
		if t.conns.CompareAndSwap(c, c+1) {
			return nil
		}
	}
}

// ReleaseConn returns one admitted connection.
func (t *Tenant) ReleaseConn() { t.conns.Add(-1) }

// Reserve admits n in-flight bytes against the tenant's MaxBytes quota;
// pair with Release.
func (t *Tenant) Reserve(n int64) error {
	if n <= 0 {
		return nil
	}
	for {
		b := t.bytes.Load()
		if t.lim.MaxBytes > 0 && b+n > t.lim.MaxBytes {
			t.rejects.Add(1)
			return &OverloadError{Resource: "tenant-bytes", Tenant: t.name, Limit: t.lim.MaxBytes}
		}
		if t.bytes.CompareAndSwap(b, b+n) {
			return nil
		}
	}
}

// Release returns n reserved bytes to the tenant quota.
func (t *Tenant) Release(n int64) {
	if n > 0 {
		t.bytes.Add(-n)
	}
}

// TenantStats is a point-in-time tenant snapshot.
type TenantStats struct {
	Name    string
	Conns   int64
	Bytes   int64
	Limits  TenantLimits
	Rejects uint64 // quota refusals (conns + bytes)
}

// Stats snapshots the tenant account.
func (t *Tenant) Stats() TenantStats {
	return TenantStats{
		Name:    t.name,
		Conns:   t.conns.Load(),
		Bytes:   t.bytes.Load(),
		Limits:  t.lim,
		Rejects: t.rejects.Load(),
	}
}
