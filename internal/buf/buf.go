// Package buf provides the pooled, reference-counted byte buffers that the
// whole Minion datagram datapath passes between layers instead of freshly
// allocated []byte slices.
//
// A Buffer is a view (offset + length) into a shared backing arena. Arenas
// come from size-classed free lists over sync.Pool (64 B … 64 KiB in
// power-of-two classes; larger requests get exact, unpooled allocations),
// and carry an atomic reference count. Retain/Slice add references, Release
// drops one; when the count reaches zero the arena returns to its class
// pool for reuse. Slicing is zero-copy: a slice is a new view over the same
// arena with its own reference.
//
// Ownership rules (enforced by convention across the stack):
//
//   - Get/GetCap/From/Adopt return a Buffer owned by the caller (one
//     reference). Passing a Buffer to a function documented as "taking
//     ownership" transfers that reference; the caller must not touch the
//     Buffer afterwards.
//   - A layer that needs bytes to outlive the call it received them in
//     takes its own reference with Retain or Slice and Releases it when
//     done.
//   - Releasing more references than were taken panics ("buf: release of
//     released buffer") — over-release is the only way pooled memory can be
//     corrupted, so it fails loudly rather than silently recycling live
//     data. Forgetting a Release is safe: the arena is simply garbage
//     collected instead of reused.
//   - Detach converts a Buffer into an ordinary garbage-collected []byte
//     (the arena is permanently removed from pooling), for handing data to
//     code outside the buffer discipline, e.g. Recv()-style APIs.
//
// The refcounts and pools are safe for concurrent use; the views themselves
// follow the usual Go rule that a []byte must not be written concurrently
// with reads.
package buf

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	minClassBits = 6  // smallest pooled arena: 64 B
	maxClassBits = 16 // largest pooled arena: 64 KiB
	numClasses   = maxClassBits - minClassBits + 1
)

// pools[i] holds arenas of 1<<(minClassBits+i) bytes.
var pools [numClasses]sync.Pool

// PoolStats counts pool activity, mainly for tests and capacity planning.
type PoolStats struct {
	Gets     uint64 // arenas requested
	PoolHits uint64 // requests satisfied from a free list
	Puts     uint64 // arenas returned to a free list
	Unpooled uint64 // oversized or adopted arenas (never pooled)
}

var stats struct {
	gets, hits, puts, unpooled atomic.Uint64
}

// Stats returns a snapshot of the package counters.
func Stats() PoolStats {
	return PoolStats{
		Gets:     stats.gets.Load(),
		PoolHits: stats.hits.Load(),
		Puts:     stats.puts.Load(),
		Unpooled: stats.unpooled.Load(),
	}
}

// arena is the shared, refcounted backing store.
type arena struct {
	storage []byte
	refs    atomic.Int32
	class   atomic.Int32 // pool index; -1 = never pooled (oversized or adopted)
}

// Buffer is one view into an arena. The zero value is invalid; obtain
// Buffers from Get, GetCap, From, Adopt, Retain or Slice.
type Buffer struct {
	b     []byte // the view: arena.storage[off : off+len]
	off   int    // view start within arena.storage
	arena *arena
}

// classFor returns the pool index for a request of n bytes, or -1 when the
// request exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > 1<<maxClassBits {
		return -1
	}
	return bits.Len(uint(n-1)) - minClassBits
}

func getArena(n int) *arena {
	stats.gets.Add(1)
	class := classFor(n)
	if class < 0 {
		stats.unpooled.Add(1)
		a := &arena{storage: make([]byte, n)}
		a.class.Store(-1)
		a.refs.Store(1)
		return a
	}
	if v := pools[class].Get(); v != nil {
		stats.hits.Add(1)
		a := v.(*arena)
		a.refs.Store(1)
		return a
	}
	a := &arena{storage: make([]byte, 1<<(minClassBits+class))}
	a.class.Store(int32(class))
	a.refs.Store(1)
	return a
}

// Get returns a Buffer of length n backed by a pooled arena. The contents
// are not zeroed (arenas are reused).
func Get(n int) *Buffer {
	a := getArena(n)
	return &Buffer{b: a.storage[:n], arena: a}
}

// GetCap returns an empty Buffer whose view has capacity at least n, for
// append-style building; finish with SetLen.
func GetCap(n int) *Buffer {
	a := getArena(n)
	return &Buffer{b: a.storage[:0], arena: a}
}

// From returns a pooled Buffer holding a copy of p.
func From(p []byte) *Buffer {
	b := Get(len(p))
	copy(b.b, p)
	return b
}

// Adopt wraps caller-provided storage in a Buffer without copying. The
// arena is reference-counted like any other but is never returned to a
// pool, so the bytes stay valid for any code still holding p.
func Adopt(p []byte) *Buffer {
	stats.unpooled.Add(1)
	a := &arena{storage: p}
	a.class.Store(-1)
	a.refs.Store(1)
	return &Buffer{b: p, arena: a}
}

// Bytes returns the Buffer's view. The slice is valid until the owning
// reference is Released. Mutating it is allowed only while the caller holds
// the sole reference.
func (b *Buffer) Bytes() []byte { return b.b }

// Len returns the view length.
func (b *Buffer) Len() int { return len(b.b) }

// Cap returns the bytes available to the view: from its start to the end
// of the arena.
func (b *Buffer) Cap() int { return cap(b.b) }

// SetLen resizes the view in place to storage[off : off+n]. It is intended
// for builder-style use after writing into Bytes()[:0] via append: the
// caller must have stayed within Cap (cobs.MaxEncodedLen-style bounds make
// this statically checkable at every call site); appends that exceeded Cap
// reallocated away from the arena and the write is lost, so SetLen panics
// if n exceeds Cap.
func (b *Buffer) SetLen(n int) {
	if b.arena == nil {
		panic("buf: SetLen on released buffer")
	}
	if n > cap(b.b) {
		panic("buf: SetLen beyond capacity")
	}
	b.b = b.b[:n]
}

// Retain adds a reference and returns a new Buffer with the same view, for
// handing to another owner. Each Buffer tracks exactly one reference and is
// Released exactly once; Retain never aliases the receiver's header.
func (b *Buffer) Retain() *Buffer {
	if b.arena == nil {
		panic("buf: retain of released buffer")
	}
	b.arena.refs.Add(1)
	return &Buffer{b: b.b, off: b.off, arena: b.arena}
}

// Slice returns a new Buffer viewing b.Bytes()[i:j] without copying. The
// slice holds its own reference and must be Released independently.
func (b *Buffer) Slice(i, j int) *Buffer {
	if b.arena == nil {
		panic("buf: slice of released buffer")
	}
	if i < 0 || j < i || j > len(b.b) {
		panic("buf: slice bounds out of range")
	}
	b.arena.refs.Add(1)
	return &Buffer{b: b.b[i:j], off: b.off + i, arena: b.arena}
}

// Release drops this Buffer's reference. When the last reference is
// dropped the arena returns to its size-class pool. Releasing an
// already-released Buffer panics.
func (b *Buffer) Release() {
	a := b.arena
	if a == nil {
		panic("buf: release of released buffer")
	}
	b.arena = nil
	b.b = nil
	if n := a.refs.Add(-1); n == 0 {
		if class := a.class.Load(); class >= 0 {
			stats.puts.Add(1)
			pools[class].Put(a)
		}
	} else if n < 0 {
		panic("buf: release of released buffer")
	}
}

// Detach returns the view as an ordinary []byte owned by the caller and
// releases the Buffer. The arena is permanently excluded from pooling, so
// the returned slice remains valid under normal garbage collection even
// though other references may still exist.
func (b *Buffer) Detach() []byte {
	a := b.arena
	if a == nil {
		panic("buf: detach of released buffer")
	}
	out := b.b
	a.class.Store(-1) // no pooled reuse once bytes escape the discipline
	stats.unpooled.Add(1)
	b.arena = nil
	b.b = nil
	if a.refs.Add(-1) < 0 {
		panic("buf: release of released buffer")
	}
	return out
}

// Copy returns an ordinary garbage-collected copy of the view — the
// copy-on-demand escape hatch for callers that want to keep delivered bytes
// past their callback without holding a reference.
func (b *Buffer) Copy() []byte {
	return append([]byte(nil), b.b...)
}

// RightSize trims the view to its first n bytes for long-term retention,
// consuming b's reference. A short fill sliced zero-copy would pin the
// whole arena while representing only n bytes — a peer drip-feeding tiny
// reads into a fixed-size read buffer could pin arena/n times any
// byte-counted budget. When n is at most half the view's capacity the
// bytes are copied into a right-sized pooled buffer instead, capping the
// amplification at the size-class factor (≤2x, with the smallest-class
// floor); fuller views stay zero-copy.
func (b *Buffer) RightSize(n int) *Buffer {
	var out *Buffer
	if n <= cap(b.b)/2 {
		out = From(b.b[:n])
	} else {
		out = b.Slice(0, n)
	}
	b.Release()
	return out
}
