package buf

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGovernorReserveRelease(t *testing.T) {
	g := NewGovernor(GovernorConfig{LimitBytes: 1000})
	if err := g.Reserve(600); err != nil {
		t.Fatalf("Reserve(600): %v", err)
	}
	if err := g.Reserve(500); err == nil {
		t.Fatal("Reserve over limit succeeded")
	} else if !errors.Is(err, ErrOverload) {
		t.Fatalf("rejection does not wrap ErrOverload: %v", err)
	}
	var oe *OverloadError
	if err := g.Reserve(500); !errors.As(err, &oe) || oe.Resource != "memory" {
		t.Fatalf("rejection not a memory OverloadError: %v", err)
	}
	if err := g.Reserve(400); err != nil {
		t.Fatalf("Reserve(400) at the limit: %v", err)
	}
	g.Release(1000)
	if got := g.Used(); got != 0 {
		t.Fatalf("Used after full release = %d", got)
	}
	if st := g.Stats(); st.Rejects != 2 {
		t.Fatalf("Rejects = %d, want 2", st.Rejects)
	}
}

func TestGovernorWatermarkLatch(t *testing.T) {
	g := NewGovernor(GovernorConfig{LimitBytes: 1000, HighWaterFrac: 0.8, LowWaterFrac: 0.5})
	var transitions []bool
	var mu sync.Mutex
	g.Notify(func(over bool) {
		mu.Lock()
		transitions = append(transitions, over)
		mu.Unlock()
	})

	g.Adjust(700)
	if g.Overloaded() {
		t.Fatal("overloaded below high water")
	}
	g.Adjust(100) // 800 = high water
	if !g.Overloaded() {
		t.Fatal("not overloaded at high water")
	}
	g.Adjust(-250) // 550: between low (500) and high — must stay latched
	if !g.Overloaded() {
		t.Fatal("overload unlatched between watermarks")
	}
	g.Adjust(-100) // 450: below low water
	if g.Overloaded() {
		t.Fatal("still overloaded below low water")
	}
	g.Adjust(400) // 850: second crossing
	if !g.Overloaded() {
		t.Fatal("second high-water crossing missed")
	}
	g.Adjust(-850)

	mu.Lock()
	defer mu.Unlock()
	want := []bool{true, false, true, false}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i, v := range want {
		if transitions[i] != v {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	if st := g.Stats(); st.Overloads != 2 {
		t.Fatalf("Overloads = %d, want 2", st.Overloads)
	}
}

func TestGovernorUnlimited(t *testing.T) {
	g := NewGovernor(GovernorConfig{})
	if err := g.Reserve(1 << 40); err != nil {
		t.Fatalf("unlimited Reserve: %v", err)
	}
	if g.Overloaded() {
		t.Fatal("unlimited governor overloaded")
	}
	g.Release(1 << 40)

	var nilGov *Governor
	if err := nilGov.Reserve(1); err != nil {
		t.Fatalf("nil governor Reserve: %v", err)
	}
	nilGov.Adjust(5)
	nilGov.Release(1)
	if nilGov.Overloaded() || nilGov.Used() != 0 {
		t.Fatal("nil governor reports usage")
	}
}

func TestTenantQuotas(t *testing.T) {
	g := NewGovernor(GovernorConfig{LimitBytes: 1 << 20})
	ten := g.Tenant("acme", TenantLimits{MaxConns: 2, MaxBytes: 100})
	if again := g.Tenant("acme", TenantLimits{MaxConns: 99}); again != ten {
		t.Fatal("Tenant not idempotent")
	}
	if err := ten.AcquireConn(); err != nil {
		t.Fatal(err)
	}
	if err := ten.AcquireConn(); err != nil {
		t.Fatal(err)
	}
	err := ten.AcquireConn()
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("conn quota rejection: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Resource != "tenant-conns" || oe.Tenant != "acme" {
		t.Fatalf("wrong OverloadError: %v", err)
	}
	ten.ReleaseConn()
	if err := ten.AcquireConn(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}

	if err := ten.Reserve(80); err != nil {
		t.Fatal(err)
	}
	if err := ten.Reserve(30); !errors.Is(err, ErrOverload) {
		t.Fatalf("byte quota rejection: %v", err)
	}
	ten.Release(80)
	if err := ten.Reserve(100); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	st := ten.Stats()
	if st.Conns != 2 || st.Bytes != 100 || st.Rejects != 2 {
		t.Fatalf("tenant stats = %+v", st)
	}
	if len(g.Tenants()) != 1 {
		t.Fatalf("Tenants() = %d entries", len(g.Tenants()))
	}
}

// TestGovernorConcurrent hammers the ledger from many goroutines and
// checks it balances and never wedges in an overloaded state.
func TestGovernorConcurrent(t *testing.T) {
	g := NewGovernor(GovernorConfig{LimitBytes: 1 << 20, HighWaterFrac: 0.7, LowWaterFrac: 0.3})
	ten := g.Tenant("load", TenantLimits{MaxConns: 64, MaxBytes: 1 << 18})
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				g.Adjust(512)
				if err := g.Reserve(4096); err == nil {
					granted.Add(1)
					g.Release(4096)
				}
				if err := ten.Reserve(128); err == nil {
					ten.Release(128)
				}
				if err := ten.AcquireConn(); err == nil {
					ten.ReleaseConn()
				}
				g.Adjust(-512)
			}
		}()
	}
	wg.Wait()
	if got := g.Used(); got != 0 {
		t.Fatalf("ledger unbalanced: Used = %d", got)
	}
	st := ten.Stats()
	if st.Conns != 0 || st.Bytes != 0 {
		t.Fatalf("tenant unbalanced: %+v", st)
	}
	// With all charges released the governor must not stay latched.
	g.Adjust(1)
	g.Adjust(-1)
	if g.Overloaded() {
		t.Fatal("governor latched overloaded at zero usage")
	}
	if granted.Load() == 0 {
		t.Fatal("no Reserve ever granted")
	}
}
