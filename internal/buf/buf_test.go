package buf

import (
	"bytes"
	"sync"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic %q, got none", want)
		}
		if s, ok := r.(string); !ok || s != want {
			t.Fatalf("panic = %v, want %q", r, want)
		}
	}()
	fn()
}

func TestGetFromRoundtrip(t *testing.T) {
	b := From([]byte("hello world"))
	if got := string(b.Bytes()); got != "hello world" {
		t.Fatalf("Bytes = %q", got)
	}
	if b.Len() != 11 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Release()
}

func TestClassSizing(t *testing.T) {
	for _, tc := range []struct{ n, wantCap int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {1000, 1024},
		{1 << 16, 1 << 16},
	} {
		b := Get(tc.n)
		if b.Len() != tc.n || cap(b.Bytes()) != tc.wantCap {
			t.Errorf("Get(%d): len %d cap %d, want cap %d", tc.n, b.Len(), cap(b.Bytes()), tc.wantCap)
		}
		b.Release()
	}
	// Oversized requests get exact, unpooled storage.
	big := Get(1<<16 + 1)
	if big.Len() != 1<<16+1 || cap(big.Bytes()) != 1<<16+1 {
		t.Errorf("oversize: len %d cap %d", big.Len(), cap(big.Bytes()))
	}
	big.Release()
}

func TestDoubleReleasePanics(t *testing.T) {
	b := Get(32)
	b.Release()
	mustPanic(t, "buf: release of released buffer", b.Release)
}

func TestUseAfterReleasePanics(t *testing.T) {
	b := Get(32)
	b.Release()
	mustPanic(t, "buf: retain of released buffer", func() { b.Retain() })
	mustPanic(t, "buf: slice of released buffer", func() { b.Slice(0, 1) })
	mustPanic(t, "buf: detach of released buffer", func() { b.Detach() })
	mustPanic(t, "buf: SetLen on released buffer", func() { b.SetLen(1) })
}

func TestSliceBounds(t *testing.T) {
	b := Get(10)
	mustPanic(t, "buf: slice bounds out of range", func() { b.Slice(4, 11) })
	mustPanic(t, "buf: slice bounds out of range", func() { b.Slice(-1, 4) })
	mustPanic(t, "buf: slice bounds out of range", func() { b.Slice(5, 4) })
	b.Release()
}

// TestRetainAcrossLayers models the datapath pattern: a sender owns a
// buffer, a receiver layer slices part of it and keeps it after the sender
// released; the bytes must stay valid until the last reference drops.
func TestRetainAcrossLayers(t *testing.T) {
	sender := From([]byte("abcdefghij"))
	view := sender.Slice(2, 6) // receiver keeps "cdef"
	sender.Release()           // sender done (e.g. segment acked)
	if got := string(view.Bytes()); got != "cdef" {
		t.Fatalf("view after sender release = %q", got)
	}
	// Only now may the arena be reused: a fresh Get of the same class must
	// not corrupt the still-held view, because the arena cannot have been
	// pooled while view holds a reference.
	other := Get(10)
	copy(other.Bytes(), "XXXXXXXXXX")
	if got := string(view.Bytes()); got != "cdef" {
		t.Fatalf("view corrupted by concurrent Get = %q", got)
	}
	other.Release()
	view.Release()
}

func TestSliceOfSlice(t *testing.T) {
	b := From([]byte("0123456789"))
	s1 := b.Slice(2, 8)
	s2 := s1.Slice(1, 4)
	if got := string(s2.Bytes()); got != "345" {
		t.Fatalf("nested slice = %q", got)
	}
	b.Release()
	s1.Release()
	if got := string(s2.Bytes()); got != "345" {
		t.Fatalf("nested slice after parents released = %q", got)
	}
	s2.Release()
}

// TestPoolReuse verifies that released arenas actually come back from the
// free list: release then immediate same-class Get on the same goroutine
// observes the same backing array. sync.Pool free lists are per-P, so a
// preemption between the Release and the Get can legitimately miss; the
// property is checked over several attempts rather than exactly once.
func TestPoolReuse(t *testing.T) {
	for attempt := 0; attempt < 50; attempt++ {
		b := Get(100)
		b.Bytes()[0] = 0xAB
		p := &b.Bytes()[0]
		b.Release()
		b2 := Get(100)
		reused := &b2.Bytes()[0] == p
		b2.Release()
		if reused {
			return
		}
	}
	t.Fatal("released arenas were never reused by a same-class Get in 50 attempts")
}

// TestNoReuseWhileReferenced is the inverse: as long as any reference is
// live, the arena must NOT be handed out again.
func TestNoReuseWhileReferenced(t *testing.T) {
	b := Get(100)
	p := &b.Bytes()[0]
	view := b.Slice(0, 10)
	b.Release() // refcount 1 (view)
	b2 := Get(100)
	defer b2.Release()
	if &b2.Bytes()[0] == p {
		t.Fatal("arena reused while a slice reference was live")
	}
	view.Release()
}

func TestDetachEscapesPooling(t *testing.T) {
	b := Get(100)
	copy(b.Bytes(), "detached-data")
	p := &b.Bytes()[0]
	out := b.Detach()
	if string(out[:13]) != "detached-data" {
		t.Fatalf("detached bytes = %q", out[:13])
	}
	// The arena must never return to the pool, so a fresh Get cannot alias
	// the detached bytes.
	b2 := Get(100)
	defer b2.Release()
	if &b2.Bytes()[0] == p {
		t.Fatal("detached arena was pooled")
	}
}

func TestDetachWithLiveSlice(t *testing.T) {
	b := From([]byte("shared-arena-bytes"))
	view := b.Slice(0, 6)
	out := b.Detach()
	view.Release() // last reference: arena must still not be pooled
	b2 := Get(18)
	b3 := Get(18)
	copy(b2.Bytes(), "XXXXXXXXXXXXXXXXXX")
	copy(b3.Bytes(), "YYYYYYYYYYYYYYYYYY")
	if !bytes.Equal(out, []byte("shared-arena-bytes")) {
		t.Fatalf("detached bytes corrupted: %q", out)
	}
	b2.Release()
	b3.Release()
}

func TestSetLenBuilder(t *testing.T) {
	b := GetCap(50)
	s := b.Bytes()[:0]
	s = append(s, "built-in-place"...)
	b.SetLen(len(s))
	if got := string(b.Bytes()); got != "built-in-place" {
		t.Fatalf("builder result = %q", got)
	}
	mustPanic(t, "buf: SetLen beyond capacity", func() { b.SetLen(1 << 20) })
	b.Release()
}

func TestAdopt(t *testing.T) {
	raw := []byte("adopted")
	b := Adopt(raw)
	if &b.Bytes()[0] != &raw[0] {
		t.Fatal("Adopt copied")
	}
	b.Release() // must not pool caller-owned storage
	b2 := Get(len(raw))
	defer b2.Release()
	if len(b2.Bytes()) > 0 && &b2.Bytes()[0] == &raw[0] {
		t.Fatal("adopted storage was pooled")
	}
}

// TestChurn exercises sustained get/slice/release cycling and checks both
// data integrity and that the pool is actually cycling (puts and hits
// advance).
func TestChurn(t *testing.T) {
	before := Stats()
	for i := 0; i < 10000; i++ {
		n := 1 + i%2000
		b := Get(n)
		pat := byte(i)
		for j := range b.Bytes() {
			b.Bytes()[j] = pat
		}
		v := b.Slice(n/4, n/2+n/4)
		b.Release()
		for _, c := range v.Bytes() {
			if c != pat {
				t.Fatalf("iteration %d: corrupted byte %x != %x", i, c, pat)
			}
		}
		v.Release()
	}
	after := Stats()
	if after.Puts <= before.Puts || after.PoolHits <= before.PoolHits {
		t.Fatalf("pool not cycling under churn: before %+v after %+v", before, after)
	}
}

// TestConcurrentChurn hammers the pools and refcounts from many goroutines;
// run under -race this validates the atomic lifecycle.
func TestConcurrentChurn(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				n := 1 + (i*31+w)%4000
				b := Get(n)
				pat := byte(w*17 + i)
				bb := b.Bytes()
				for j := range bb {
					bb[j] = pat
				}
				v := b.Slice(0, n/2)
				r := b.Retain()
				b.Release()
				for _, c := range v.Bytes() {
					if c != pat {
						t.Errorf("worker %d: corruption", w)
						return
					}
				}
				v.Release()
				r.Release()
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentSharedRelease has many goroutines releasing references to
// the same arena; exactly one (the last) must trigger the pool return, and
// the count must never go negative.
func TestConcurrentSharedRelease(t *testing.T) {
	for round := 0; round < 200; round++ {
		b := Get(256)
		const refs = 16
		views := make([]*Buffer, refs)
		for i := range views {
			views[i] = b.Slice(0, 16)
		}
		var wg sync.WaitGroup
		for _, v := range views {
			wg.Add(1)
			go func(v *Buffer) {
				defer wg.Done()
				v.Release()
			}(v)
		}
		b.Release()
		wg.Wait()
	}
}

func BenchmarkGetRelease(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := Get(1500)
		x.Release()
	}
}

func BenchmarkSliceRelease(b *testing.B) {
	b.ReportAllocs()
	base := Get(4096)
	defer base.Release()
	for i := 0; i < b.N; i++ {
		s := base.Slice(100, 1500)
		s.Release()
	}
}
