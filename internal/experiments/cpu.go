package experiments

import (
	"fmt"
	"time"

	"minion/internal/metrics"
	"minion/internal/netem"
	"minion/internal/sim"
	"minion/internal/tcp"
	"minion/internal/ucobs"
	"minion/internal/utls"
)

// cpuRun is a measured bulk message transfer returning the components of
// Figure 6's cost bars. "Kernel time" in the simulation is the processor
// time of everything outside the application-level codec (TCP stack, link
// emulation); "user time" is the real CPU spent in COBS/TLS encode/decode
// and record scanning — the same split the paper draws inside each bar
// (see EXPERIMENTS.md for the mapping).
type cpuRun struct {
	wall      time.Duration // entire simulation
	userSend  time.Duration
	userRecv  time.Duration
	delivered int
}

func runCOBSTransfer(loss float64, total int, variant string) cpuRun {
	s := sim.New(11)
	fwd := netem.NewLink(s, netem.LinkConfig{Rate: 10_000_000, Delay: 30 * time.Millisecond, QueueBytes: 1 << 30, Loss: netem.BernoulliLoss{P: loss}})
	back := netem.NewLink(s, netem.LinkConfig{Rate: 10_000_000, Delay: 30 * time.Millisecond, QueueBytes: 1 << 30})

	sndCfg := tcp.Config{NoDelay: true}
	rcvCfg := tcp.Config{}
	if variant == "ucobs" { // uCOBS = COBS framing + uTCP on both ends
		sndCfg.UnorderedSend = true
		sndCfg.CoalesceWrites = true
		rcvCfg.Unordered = true
	}
	ta, tb := tcp.NewPair(s, sndCfg, rcvCfg, fwd, back)

	var run cpuRun
	const msgSize = 1000
	msg := make([]byte, msgSize)
	nMsgs := total / msgSize

	switch variant {
	case "tcp": // raw TCP baseline: no framing at all
		got := bulkSink(tb)
		sent := 0
		var pump func()
		pump = func() {
			for sent < total {
				n, err := ta.Write(msg)
				sent += n
				if err != nil {
					return
				}
			}
		}
		ta.OnWritable(pump)
		s.Schedule(0, pump)
		start := time.Now()
		s.RunUntil(10 * time.Minute)
		run.wall = time.Since(start)
		run.delivered = int(*got)
	default: // "cobs" (plain TCP) or "ucobs" (uTCP)
		a, b := ucobs.New(ta), ucobs.New(tb)
		delivered := 0
		b.OnMessage(func([]byte) { delivered++ })
		sent := 0
		var pump func()
		pump = func() {
			for sent < nMsgs {
				if err := a.Send(msg, ucobs.Options{}); err != nil {
					return
				}
				sent++
			}
		}
		ta.OnWritable(pump)
		s.Schedule(0, pump)
		start := time.Now()
		s.RunUntil(10 * time.Minute)
		run.wall = time.Since(start)
		run.userSend = a.Stats().CPUEncode
		run.userRecv = b.Stats().CPUDecode
		run.delivered = delivered * msgSize
	}
	return run
}

// Fig6a regenerates the COBS/uCOBS CPU cost comparison (paper §8.1,
// Figure 6a): processing cost of the framed variants normalized to raw TCP
// at each loss rate, split into the codec ("user") component and the rest.
func Fig6a(sc Scale) Result {
	losses := []float64{0.005, 0.01, 0.02}
	total := sc.picki(1<<20, 16<<20)

	tb := metrics.Table{
		Title:   fmt.Sprintf("Processing cost of a %d MiB framed transfer, normalized to raw TCP", total>>20),
		Columns: []string{"variant", "loss %", "user-send ms", "user-recv ms", "total xTCP"},
	}
	for _, loss := range losses {
		base := runCOBSTransfer(loss, total, "tcp")
		for _, variant := range []string{"cobs", "ucobs"} {
			r := runCOBSTransfer(loss, total, variant)
			tb.AddRow(variant,
				fmt.Sprintf("%.1f", loss*100),
				fmt.Sprintf("%.2f", float64(r.userSend)/1e6),
				fmt.Sprintf("%.2f", float64(r.userRecv)/1e6),
				fmt.Sprintf("%.2f", float64(r.wall)/float64(base.wall)))
		}
	}
	return Result{Name: "fig6a", Title: "COBS/uCOBS CPU cost vs raw TCP", Output: tb.String()}
}

func runTLSTransfer(loss float64, total int, unordered bool) (send, recv cpuRun, bytesSealed int64) {
	s := sim.New(13)
	fwd := netem.NewLink(s, netem.LinkConfig{Rate: 10_000_000, Delay: 30 * time.Millisecond, QueueBytes: 1 << 30, Loss: netem.BernoulliLoss{P: loss}})
	back := netem.NewLink(s, netem.LinkConfig{Rate: 10_000_000, Delay: 30 * time.Millisecond, QueueBytes: 1 << 30})
	sndCfg := tcp.Config{NoDelay: true}
	rcvCfg := tcp.Config{}
	if unordered {
		rcvCfg.Unordered = true
	}
	ta, tb := tcp.NewPair(s, sndCfg, rcvCfg, fwd, back)
	srv := utls.Server(tb, utls.Config{})
	cli := utls.Client(ta, utls.Config{})
	delivered := 0
	srv.OnMessage(func([]byte) { delivered++ })

	const msgSize = 1000
	msg := make([]byte, msgSize)
	nMsgs := total / msgSize
	sent := 0
	var pump func()
	pump = func() {
		for sent < nMsgs {
			if err := cli.Send(msg, utls.Options{}); err != nil {
				return
			}
			sent++
		}
	}
	ta.OnWritable(pump)
	s.Schedule(0, pump)
	start := time.Now()
	s.RunUntil(10 * time.Minute)
	wall := time.Since(start)
	send = cpuRun{wall: wall, userSend: cli.Stats().CPUSeal}
	recv = cpuRun{wall: wall, userRecv: srv.Stats().CPUOpen, delivered: delivered * msgSize}
	return send, recv, cli.Stats().BytesSealed
}

// Fig6b regenerates the TLS/uTLS CPU comparison (paper §8.1, Figure 6b):
// sender cost identical; uTLS receiver within a few percent of TLS; no
// bandwidth overhead beyond TLS.
func Fig6b(sc Scale) Result {
	losses := []float64{0.005, 0.01, 0.02}
	total := sc.picki(1<<20, 16<<20)

	tb := metrics.Table{
		Title:   fmt.Sprintf("TLS vs uTLS cost for a %d MiB transfer", total>>20),
		Columns: []string{"loss %", "seal TLS ms", "seal uTLS ms", "open TLS ms", "open uTLS ms", "recv uTLS/TLS", "extra bw"},
	}
	for _, loss := range losses {
		sT, rT, bytesT := runTLSTransfer(loss, total, false)
		sU, rU, bytesU := runTLSTransfer(loss, total, true)
		ratio := float64(rU.userRecv) / float64(rT.userRecv)
		tb.AddRow(
			fmt.Sprintf("%.1f", loss*100),
			fmt.Sprintf("%.2f", float64(sT.userSend)/1e6),
			fmt.Sprintf("%.2f", float64(sU.userSend)/1e6),
			fmt.Sprintf("%.2f", float64(rT.userRecv)/1e6),
			fmt.Sprintf("%.2f", float64(rU.userRecv)/1e6),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%+d B", bytesU-bytesT))
	}
	return Result{Name: "fig6b", Title: "TLS vs uTLS CPU and bandwidth", Output: tb.String()}
}
