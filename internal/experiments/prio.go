package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"minion/internal/metrics"
	"minion/internal/netem"
	"minion/internal/sim"
	"minion/internal/tcp"
	"minion/internal/ucobs"
)

// Fig10 regenerates the send-side prioritization experiment (paper §8.3):
// a sender pushing messages at network-limited rate marks one in every 100
// high-priority. Over uTCP, high-priority messages short-cut the send
// queue and see far lower application-observed delay; over TCP both
// classes queue FIFO and suffer alike.
func Fig10(sc Scale) Result {
	dur := sc.pick(10*time.Second, 40*time.Second)

	run := func(unordered bool) (hi, lo metrics.Samples) {
		s := sim.New(31)
		fwd := netem.NewLink(s, netem.LinkConfig{Rate: 2_000_000, Delay: 30 * time.Millisecond, QueueBytes: 24_000})
		back := netem.NewLink(s, netem.LinkConfig{Rate: 2_000_000, Delay: 30 * time.Millisecond})
		sndCfg := tcp.Config{NoDelay: true}
		rcvCfg := tcp.Config{}
		if unordered {
			sndCfg.UnorderedSend = true
			sndCfg.CoalesceWrites = true
			rcvCfg.Unordered = true
		}
		ta, tb := tcp.NewPair(s, sndCfg, rcvCfg, fwd, back)
		a, b := ucobs.New(ta), ucobs.New(tb)

		sentAt := map[uint64]time.Duration{}
		isHigh := map[uint64]bool{}
		b.OnMessage(func(m []byte) {
			if len(m) < 8 {
				return
			}
			id := binary.BigEndian.Uint64(m)
			if t0, ok := sentAt[id]; ok {
				d := s.Now() - t0
				if isHigh[id] {
					hi.AddDuration(d)
				} else {
					lo.AddDuration(d)
				}
				delete(sentAt, id)
			}
		})

		var id uint64
		msg := make([]byte, 1000)
		var pump func()
		pump = func() {
			for {
				high := id%100 == 99 // one in every 100 messages
				prio := uint32(10)
				if high {
					prio = 1
				}
				binary.BigEndian.PutUint64(msg, id)
				if err := a.Send(msg, ucobs.Options{Priority: prio}); err != nil {
					return
				}
				sentAt[id] = s.Now()
				isHigh[id] = high
				id++
			}
		}
		ta.OnWritable(pump)
		s.Schedule(500*time.Millisecond, pump)
		s.RunUntil(dur)
		return hi, lo
	}

	tb := metrics.Table{
		Title:   "Application-observed message delay, 1 in 100 messages high-priority (2 Mbps, 60 ms RTT)",
		Columns: []string{"transport", "class", "n", "median ms", "p95 ms", "mean ms"},
	}
	for _, unordered := range []bool{false, true} {
		name := "TCP"
		if unordered {
			name = "uTCP"
		}
		hi, lo := run(unordered)
		for _, c := range []struct {
			class string
			s     *metrics.Samples
		}{{"high", &hi}, {"low", &lo}} {
			tb.AddRow(name, c.class,
				fmt.Sprintf("%d", c.s.N()),
				fmt.Sprintf("%.1f", c.s.Percentile(50)),
				fmt.Sprintf("%.1f", c.s.Percentile(95)),
				fmt.Sprintf("%.1f", c.s.Mean()))
		}
	}
	return Result{Name: "fig10", Title: "Send-side prioritization delays", Output: tb.String()}
}
