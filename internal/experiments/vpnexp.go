package experiments

import (
	"fmt"
	"time"

	"minion/internal/metrics"
	"minion/internal/netem"
	"minion/internal/sim"
	"minion/internal/tcp"
	"minion/internal/ucobs"
	"minion/internal/vpn"
)

// vpnVariant captures the two independent OpenVPN modifications of §8.4:
// unordered delivery at the receiving ends of the tunnel ("uCOBS") and ACK
// prioritization at the sending ends ("priACKs") — uTCP's receiver- and
// sender-side enhancements respectively, deployable independently (§4).
type vpnVariant struct {
	name      string
	unordered bool // receiver-side SO_UNORDERED on the outer connection
	priACKs   bool // sender-side SO_UNORDEREDSEND + ACK classification
}

var vpnVariants = []vpnVariant{
	{"TCP", false, false},
	{"TCP+priACKs", false, true},
	{"uCOBS", true, false},
	{"uCOBS+priACKs", true, true},
}

// runVPN builds the §8.4 topology — a 3 Mbps down / 0.5 Mbps up access
// link (the median-residential profile the paper cites) carrying one VPN
// tunnel — and runs nDown inner downloads and nUp inner uploads through it
// for dur. It returns total inner download and upload goodput in bytes.
func runVPN(seed int64, v vpnVariant, nDown, nUp int, dur time.Duration) (dlBytes, ulBytes int64) {
	s := sim.New(seed)
	up := netem.LinkConfig{Rate: 500_000, Delay: 20 * time.Millisecond, QueueBytes: 16_000}
	down := netem.LinkConfig{Rate: 3_000_000, Delay: 20 * time.Millisecond, QueueBytes: 48_000}
	db := netem.NewDumbbell(s, up, down)

	outerCfg := tcp.Config{
		NoDelay:        true,
		Unordered:      v.unordered,
		UnorderedSend:  v.priACKs,
		CoalesceWrites: v.priACKs,
		// OpenVPN-realistic socket buffering: with the default 256 KiB the
		// 0.5 Mbps uplink queues seconds of tunneled data ahead of inner
		// ACKs and the unmodified tunnel melts down completely, which
		// overstates the paper's effect.
		SendBufBytes: 32 * 1024,
	}
	outCli := tcp.New(s, outerCfg, nil)
	outSrv := tcp.New(s, outerCfg, nil)
	tcp.AttachDumbbellClient(outCli, 0, db)
	tcp.AttachDumbbellServer(outSrv, 0, db)
	outSrv.Listen()
	outCli.Connect()

	cliEnd := vpn.New(ucobs.New(outCli), v.priACKs)
	srvEnd := vpn.New(ucobs.New(outSrv), v.priACKs)

	var dlCounters, ulCounters []*int64
	flow := uint32(1)
	// Downloads: inner server -> inner client.
	for i := 0; i < nDown; i++ {
		sndr := tcp.New(s, tcp.Config{NoDelay: true}, nil) // server side
		rcvr := tcp.New(s, tcp.Config{}, nil)              // client side
		srvEnd.AttachConn(flow, sndr)
		cliEnd.AttachConn(flow, rcvr)
		rcvr.Listen()
		sndr.Connect()
		dlCounters = append(dlCounters, bulkSink(rcvr))
		bulkStreamPump(s, sndr, 500*time.Millisecond)
		flow++
	}
	// Uploads: inner client -> inner server.
	for i := 0; i < nUp; i++ {
		sndr := tcp.New(s, tcp.Config{NoDelay: true}, nil) // client side
		rcvr := tcp.New(s, tcp.Config{}, nil)              // server side
		cliEnd.AttachConn(flow, sndr)
		srvEnd.AttachConn(flow, rcvr)
		rcvr.Listen()
		sndr.Connect()
		ulCounters = append(ulCounters, bulkSink(rcvr))
		bulkStreamPump(s, sndr, 500*time.Millisecond)
		flow++
	}

	s.RunUntil(dur)
	for _, c := range dlCounters {
		dlBytes += *c
	}
	for _, c := range ulCounters {
		ulBytes += *c
	}
	return dlBytes, ulBytes
}

// Fig11 regenerates the tunnel-throughput experiment: one inner download
// against a growing number of inner uploads, original vs fully modified
// OpenVPN. The modified tunnel roughly doubles download throughput once
// uploads contend for the 0.5 Mbps upstream (paper §8.4).
func Fig11(sc Scale) Result {
	dur := sc.pick(20*time.Second, 60*time.Second)
	maxUp := sc.picki(3, 5)

	tb := metrics.Table{
		Title:   "Inner download throughput through the tunnel vs number of competing uploads",
		Columns: []string{"uploads", "original Mbps", "modified Mbps", "modified/original"},
	}
	orig := vpnVariants[0]  // TCP
	modif := vpnVariants[3] // uCOBS+priACKs
	for n := 0; n <= maxUp; n++ {
		d0, _ := runVPN(41, orig, 1, n, dur)
		d1, _ := runVPN(41, modif, 1, n, dur)
		m0 := metrics.Mbps(d0, dur)
		m1 := metrics.Mbps(d1, dur)
		ratio := 0.0
		if m0 > 0 {
			ratio = m1 / m0
		}
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", m0), fmt.Sprintf("%.2f", m1), fmt.Sprintf("%.2f", ratio))
	}
	return Result{Name: "fig11", Title: "OpenVPN-style tunnel: download vs competing uploads", Output: tb.String()}
}

// Fig12 regenerates the modification ablation: upload and download
// utilization for each variant in three traffic mixes (paper §8.4's
// UL-only / 3 DL + 1 UL / DL-only scatter).
func Fig12(sc Scale) Result {
	dur := sc.pick(20*time.Second, 60*time.Second)
	scenarios := []struct {
		name       string
		nDown, nUp int
	}{
		{"UL only", 0, 1},
		{"3DL+1UL", 3, 1},
		{"DL only", 1, 0},
	}
	tb := metrics.Table{
		Title:   "Tunnel utilization by variant and traffic mix (3 Mbps down / 0.5 Mbps up)",
		Columns: []string{"scenario", "variant", "DL Mbps", "UL Mbps"},
	}
	for _, sc2 := range scenarios {
		for _, v := range vpnVariants {
			dl, ul := runVPN(43, v, sc2.nDown, sc2.nUp, dur)
			tb.AddRow(sc2.name, v.name,
				fmt.Sprintf("%.2f", metrics.Mbps(dl, dur)),
				fmt.Sprintf("%.3f", metrics.Mbps(ul, dur)))
		}
	}
	return Result{Name: "fig12", Title: "Contribution of independent tunnel modifications", Output: tb.String()}
}
