// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) on the simulated substrate. Each FigN/TableN function is
// self-contained: it builds the topology, drives the workload, and returns
// a formatted Result whose rows correspond to the paper's plotted series.
//
// Absolute numbers differ from the paper (their testbed was three physical
// machines; ours is a discrete-event simulation), but each experiment is
// constructed so the paper's qualitative result — who wins, by roughly what
// factor, where the crossover lies — is reproduced. EXPERIMENTS.md records
// the paper-vs-measured comparison for every entry.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"minion/internal/metrics"
	"minion/internal/netem"
	"minion/internal/sim"
	"minion/internal/tcp"
	"minion/internal/ucobs"
)

// Result is one regenerated table/figure.
type Result struct {
	Name   string // e.g. "fig5"
	Title  string
	Output string // formatted rows/series
}

func (r Result) String() string {
	return fmt.Sprintf("### %s — %s\n%s", r.Name, r.Title, r.Output)
}

// Scale controls experiment durations: Quick for tests/benches, Full for
// the paper-scale run.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

func (sc Scale) pick(q, f time.Duration) time.Duration {
	if sc == Quick {
		return q
	}
	return f
}

func (sc Scale) picki(q, f int) int {
	if sc == Quick {
		return q
	}
	return f
}

// bulkSink drains a TCP receiver, counting payload bytes.
func bulkSink(c *tcp.Conn) *int64 {
	var n int64
	buf := make([]byte, 64*1024)
	c.OnReadable(func() {
		for {
			k, _ := c.Read(buf)
			if k == 0 {
				return
			}
			n += int64(k)
		}
	})
	return &n
}

// unorderedSink drains a uTCP receiver in unordered mode.
func unorderedSink(c *tcp.Conn) *int64 {
	var n int64
	c.OnReadable(func() {
		for {
			d, err := c.ReadUnordered()
			if err != nil {
				return
			}
			if d.InOrder {
				n += int64(len(d.Data))
			}
		}
	})
	return &n
}

// bulkStreamPump writes a continuous byte stream (plain Write path).
func bulkStreamPump(s *sim.Simulator, c *tcp.Conn, startAt time.Duration) {
	chunk := make([]byte, 32*1024)
	var pump func()
	pump = func() {
		for {
			if _, err := c.Write(chunk); err != nil {
				return
			}
		}
	}
	c.OnWritable(pump)
	s.Schedule(startAt, pump)
}

// msgPump writes fixed-size messages via WriteMsg as fast as the buffer
// allows.
func msgPump(s *sim.Simulator, c *tcp.Conn, size int, startAt time.Duration) {
	msg := make([]byte, size)
	var pump func()
	pump = func() {
		for {
			if _, err := c.WriteMsg(msg, tcp.WriteOptions{Tag: tcp.TagDefault}); err != nil {
				return
			}
		}
	}
	c.OnWritable(pump)
	s.Schedule(startAt, pump)
}

// addCompetingBulkFlow starts a client->server bulk TCP flow on a dumbbell
// at startAt and returns the receiver's byte counter.
func addCompetingBulkFlow(s *sim.Simulator, db *netem.Dumbbell, flow int, startAt time.Duration) *int64 {
	snd := tcp.New(s, tcp.Config{NoDelay: true}, nil)
	rcv := tcp.New(s, tcp.Config{}, nil)
	tcp.AttachDumbbellClient(snd, flow, db)
	tcp.AttachDumbbellServer(rcv, flow, db)
	rcv.Listen()
	s.Schedule(startAt, snd.Connect)
	got := bulkSink(rcv)
	bulkStreamPump(s, snd, startAt+10*time.Millisecond)
	return got
}

// ---------------------------------------------------------------------------
// Figure 5: raw uTCP vs TCP throughput as a function of application message
// size (paper §8.1). The Linux artifact — congestion control counting
// skbuffs rather than bytes — makes uTCP throughput proportional to the
// average segment fill when messages don't pack into full segments; the
// §8.1 coalescing fix restores parity when the MSS is a multiple of the
// message size.
// ---------------------------------------------------------------------------

// Fig5 regenerates the throughput-vs-message-size curves.
func Fig5(sc Scale) Result {
	sizes := []int{181, 362, 500, 724, 1000, 1200, 1448, 1800, 2172, 2500, 2896}
	if sc == Quick {
		sizes = []int{362, 724, 1000, 1448, 2172, 2896}
	}
	dur := sc.pick(8*time.Second, 30*time.Second)

	// A light random-loss regime keeps the congestion window loss-limited
	// rather than link-limited: packet-counted Reno then pins the window
	// to the same *segment count* regardless of segment size, so uTCP's
	// partially-filled segments translate directly into lost throughput —
	// the Linux skbuff-counting artifact of §8.1.
	run := func(size int, unordered bool) float64 {
		s := sim.New(42)
		fwd := netem.NewLink(s, netem.LinkConfig{Rate: 2_000_000, Delay: 30 * time.Millisecond, QueueBytes: 48_000, Loss: netem.BernoulliLoss{P: 0.012}})
		back := netem.NewLink(s, netem.LinkConfig{Rate: 2_000_000, Delay: 30 * time.Millisecond})
		sndCfg := tcp.Config{NoDelay: true}
		rcvCfg := tcp.Config{}
		if unordered {
			sndCfg.UnorderedSend = true
			sndCfg.CoalesceWrites = true // paper's partial fix, as plotted
			rcvCfg.Unordered = true
		}
		snd, rcv := tcp.NewPair(s, sndCfg, rcvCfg, fwd, back)
		var got *int64
		if unordered {
			got = unorderedSink(rcv)
		} else {
			got = bulkSink(rcv)
		}
		if unordered {
			msgPump(s, snd, size, 100*time.Millisecond)
		} else {
			// Plain TCP: same message-sized application writes, but the
			// stack packs them into MSS segments.
			msg := make([]byte, size)
			var pump func()
			pump = func() {
				for {
					if n, err := snd.Write(msg); err != nil || n < len(msg) {
						return
					}
				}
			}
			snd.OnWritable(pump)
			s.Schedule(100*time.Millisecond, pump)
		}
		s.RunUntil(dur)
		return metrics.Mbps(*got, dur-100*time.Millisecond)
	}

	tb := metrics.Table{
		Title:   "Throughput vs application message size (2 Mbps, 60 ms RTT)",
		Columns: []string{"msg bytes", "TCP Mbps", "uTCP Mbps", "uTCP/TCP"},
	}
	for _, size := range sizes {
		t0 := run(size, false)
		t1 := run(size, true)
		ratio := 0.0
		if t0 > 0 {
			ratio = t1 / t0
		}
		tb.AddRow(fmt.Sprintf("%d", size), fmt.Sprintf("%.2f", t0), fmt.Sprintf("%.2f", t1), fmt.Sprintf("%.2f", ratio))
	}
	return Result{Name: "fig5", Title: "Raw uTCP vs TCP throughput by message size", Output: tb.String()}
}

// ---------------------------------------------------------------------------
// §8.1 raw CPU: uTCP's CPU cost is nearly identical to TCP's across loss
// rates. We measure the real processor time of the whole simulated
// transfer for each variant.
// ---------------------------------------------------------------------------

// RawCPU regenerates the §8.1 claim that raw uTCP CPU ≈ TCP CPU.
func RawCPU(sc Scale) Result {
	losses := []float64{0, 0.01, 0.02, 0.05}
	total := sc.picki(1<<20, 8<<20)

	run := func(loss float64, unordered bool) time.Duration {
		s := sim.New(7)
		fwd := netem.NewLink(s, netem.LinkConfig{Rate: 10_000_000, Delay: 30 * time.Millisecond, QueueBytes: 1 << 30, Loss: netem.BernoulliLoss{P: loss}})
		back := netem.NewLink(s, netem.LinkConfig{Rate: 10_000_000, Delay: 30 * time.Millisecond, QueueBytes: 1 << 30})
		sndCfg := tcp.Config{NoDelay: true}
		rcvCfg := tcp.Config{}
		if unordered {
			sndCfg.UnorderedSend = true
			sndCfg.CoalesceWrites = true
			rcvCfg.Unordered = true
		}
		snd, rcv := tcp.NewPair(s, sndCfg, rcvCfg, fwd, back)
		var got *int64
		if unordered {
			got = unorderedSink(rcv)
		} else {
			got = bulkSink(rcv)
		}
		sent := 0
		msg := make([]byte, 1448)
		var pump func()
		pump = func() {
			for sent < total {
				var n int
				var err error
				if unordered {
					n, err = snd.WriteMsg(msg, tcp.WriteOptions{Tag: tcp.TagDefault})
				} else {
					n, err = snd.Write(msg)
				}
				sent += n
				if err != nil {
					return
				}
			}
		}
		snd.OnWritable(pump)
		s.Schedule(0, pump)
		start := time.Now()
		s.RunUntil(10 * time.Minute)
		elapsed := time.Since(start)
		if *got < int64(total) {
			return -1
		}
		return elapsed
	}

	tb := metrics.Table{
		Title:   fmt.Sprintf("Processor time for a %d MiB transfer (whole simulation)", total>>20),
		Columns: []string{"loss %", "TCP ms", "uTCP ms", "uTCP/TCP"},
	}
	for _, loss := range losses {
		t0 := run(loss, false)
		t1 := run(loss, true)
		tb.AddRow(fmt.Sprintf("%.1f", loss*100),
			fmt.Sprintf("%.1f", float64(t0)/1e6),
			fmt.Sprintf("%.1f", float64(t1)/1e6),
			fmt.Sprintf("%.2f", float64(t1)/float64(t0)))
	}
	return Result{Name: "rawcpu", Title: "Raw uTCP CPU cost vs TCP (§8.1)", Output: tb.String()}
}

// All runs every experiment at the given scale.
func All(sc Scale) []Result {
	return []Result{
		Fig5(sc), RawCPU(sc),
		Fig6a(sc), Fig6b(sc),
		Fig7(sc), Fig8(sc), Fig9(sc),
		Fig10(sc),
		Fig11(sc), Fig12(sc),
		Fig13(sc),
		Table1(),
	}
}

// Render formats a set of results for terminal output.
func Render(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ucobsPairOnDumbbell builds a uCOBS connection across a dumbbell.
// unordered selects uTCP on both endpoints.
func ucobsPairOnDumbbell(s *sim.Simulator, db *netem.Dumbbell, flow int, unordered bool) (cli, srv *ucobs.Conn) {
	cfg := tcp.Config{NoDelay: true}
	if unordered {
		cfg.UnorderedSend = true
		cfg.Unordered = true
		cfg.CoalesceWrites = true
	}
	ta := tcp.New(s, cfg, nil)
	tb := tcp.New(s, cfg, nil)
	tcp.AttachDumbbellClient(ta, flow, db)
	tcp.AttachDumbbellServer(tb, flow, db)
	tb.Listen()
	ta.Connect()
	return ucobs.New(ta), ucobs.New(tb)
}
