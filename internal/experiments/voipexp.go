package experiments

import (
	"fmt"
	"time"

	"minion/internal/metrics"
	"minion/internal/netem"
	"minion/internal/sim"
	"minion/internal/ucobs"
	"minion/internal/udp"
	"minion/internal/voip"
)

// voipTransport names the three transports Figures 7-9 compare.
var voipTransports = []string{"uCOBS", "TCP", "UDP"}

// runVoIPCall runs one call over the paper's §8.2 topology: 3 Mbps, 60 ms
// RTT dumbbell, SPEEX-profile frames, competing client->server bulk TCP
// flows started at the given times. Returns the finished Call.
func runVoIPCall(seed int64, transport string, frames int, jitterBuf time.Duration, competingStarts []time.Duration) *voip.Call {
	s := sim.New(seed)
	link := netem.LinkConfig{Rate: 3_000_000, Delay: 30 * time.Millisecond, QueueBytes: 48_000}
	db := netem.NewDumbbell(s, link, link)

	var call *voip.Call
	var send func(seq int, payload []byte)

	switch transport {
	case "UDP":
		snd, rcv := udp.New(), udp.New()
		udp.AttachDumbbellClient(snd, 0, db)
		udp.AttachDumbbellServer(rcv, 0, db)
		rcv.OnMessage(func(m []byte) { call.FrameArrivedPayload(m) })
		send = func(seq int, payload []byte) { snd.Send(payload) }
	case "TCP", "uCOBS":
		cli, srv := ucobsPairOnDumbbell(s, db, 0, transport == "uCOBS")
		srv.OnMessage(func(m []byte) { call.FrameArrivedPayload(m) })
		send = func(seq int, payload []byte) { cli.Send(payload, ucobs.Options{}) }
	default:
		panic("unknown voip transport " + transport)
	}

	for i, at := range competingStarts {
		addCompetingBulkFlow(s, db, 100+i, at)
	}

	call = voip.NewCall(s, voip.SpeexUWB, frames, jitterBuf, send)
	// Let the transport establish before talking.
	s.Schedule(time.Second, call.Start)
	s.RunUntil(time.Second + time.Duration(frames)*voip.SpeexUWB.FrameInterval + 5*time.Second)
	return call
}

// Fig7 regenerates the end-to-end VoIP frame latency CDF under heavy
// contention (4 competing TCP flows): uCOBS delivers ~95% of frames within
// 200 ms vs ~80% for TCP; UDP loses a few percent outright (paper §8.2).
func Fig7(sc Scale) Result {
	frames := sc.picki(1500, 6000) // 30 s / 2 min of 20 ms frames
	starts := []time.Duration{0, 0, 0, 0}

	points := []float64{50, 100, 150, 200, 250, 300}
	tb := metrics.Table{
		Title: "CDF of one-way VoIP frame latency, 4 competing TCP flows (3 Mbps, 60 ms RTT)",
		Columns: append([]string{"transport"}, func() []string {
			var c []string
			for _, p := range points {
				c = append(c, fmt.Sprintf("<=%.0fms", p))
			}
			return append(c, "delivered")
		}()...),
	}
	for _, tr := range voipTransports {
		call := runVoIPCall(21, tr, frames, 200*time.Millisecond, starts)
		lat := call.Latencies()
		delivered := call.DeliveredFraction()
		row := []string{tr}
		for _, p := range points {
			// CDF over all frames: lost frames never arrive.
			row = append(row, fmt.Sprintf("%.2f", lat.FractionBelow(p)*delivered))
		}
		row = append(row, fmt.Sprintf("%.3f", delivered))
		tb.AddRow(row...)
	}
	return Result{Name: "fig7", Title: "VoIP frame latency CDF", Output: tb.String()}
}

// Fig8 regenerates the codec-perceived burst-loss CDF with a 200 ms jitter
// buffer: ~80% of uCOBS bursts are <=3 frames (near UDP), while ~40% of
// TCP's bursts exceed 10 frames (paper §8.2).
func Fig8(sc Scale) Result {
	frames := sc.picki(1500, 6000)
	starts := []time.Duration{0, 0, 0, 0}

	lengths := []float64{1, 2, 3, 5, 10, 20, 50}
	cols := []string{"transport", "bursts"}
	for _, l := range lengths {
		cols = append(cols, fmt.Sprintf("<=%.0f", l))
	}
	tb := metrics.Table{
		Title:   "CDF of burst-loss length (frames missing a 200 ms playout budget)",
		Columns: cols,
	}
	for _, tr := range voipTransports {
		call := runVoIPCall(22, tr, frames, 200*time.Millisecond, starts)
		var s metrics.Samples
		for _, b := range call.BurstLosses() {
			s.Add(float64(b))
		}
		row := []string{tr, fmt.Sprintf("%d", s.N())}
		for _, l := range lengths {
			row = append(row, fmt.Sprintf("%.2f", s.FractionBelow(l)))
		}
		tb.AddRow(row...)
	}
	return Result{Name: "fig8", Title: "Codec-perceived loss bursts", Output: tb.String()}
}

// Fig9 regenerates the moving perceptual-quality score over a 4-minute
// call with competing flows added progressively (1 flow at t=0, a second
// at t=60s, two more at t=120s — the paper's 1/2/4 schedule). Quality is
// the E-model MOS substitute (see internal/voip). uCOBS tracks UDP;
// TCP collapses under contention.
func Fig9(sc Scale) Result {
	var frames int
	var starts []time.Duration
	var windows time.Duration
	if sc == Quick {
		frames = 3000 // 1-minute call, compressed schedule
		starts = []time.Duration{0, 20 * time.Second, 40 * time.Second, 40 * time.Second}
		windows = 20 * time.Second
	} else {
		frames = 12000 // 4-minute call
		starts = []time.Duration{0, 60 * time.Second, 120 * time.Second, 120 * time.Second}
		windows = 30 * time.Second
	}

	tb := metrics.Table{
		Title:   "Mean quality score (E-model MOS) per window; competing flows join over time",
		Columns: []string{"transport"},
	}
	total := time.Duration(frames) * voip.SpeexUWB.FrameInterval
	for w := time.Duration(0); w < total; w += windows {
		tb.Columns = append(tb.Columns, fmt.Sprintf("t=%ds", int((w+windows)/time.Second)))
	}
	for _, tr := range voipTransports {
		call := runVoIPCall(23, tr, frames, 200*time.Millisecond, starts)
		scores := call.MOSWindows(2 * time.Second)
		row := []string{tr}
		per := int(windows / (2 * time.Second))
		for i := 0; i < len(scores); i += per {
			sum, n := 0.0, 0
			for j := i; j < i+per && j < len(scores); j++ {
				sum += scores[j]
				n++
			}
			row = append(row, fmt.Sprintf("%.2f", sum/float64(n)))
		}
		tb.AddRow(row...)
	}
	return Result{Name: "fig9", Title: "Moving quality score under growing contention", Output: tb.String()}
}
