package experiments

import (
	"fmt"
	"sort"
	"time"

	"minion/internal/metrics"
	"minion/internal/mstcp"
	"minion/internal/netem"
	"minion/internal/sim"
	"minion/internal/tcp"
	"minion/internal/ucobs"
	"minion/internal/web"
)

// pageResult records one loaded page.
type pageResult struct {
	bucket  string
	avgTTFB float64 // mean over objects of (first response byte - page start), ms
	total   float64 // total page load time, ms
}

// webLink is the §8.5 path: 1.5 Mbps each way, 60 ms RTT.
func webLink(s *sim.Simulator) (*netem.Link, *netem.Link) {
	cfg := netem.LinkConfig{Rate: 1_500_000, Delay: 30 * time.Millisecond, QueueBytes: 24_000}
	return netem.NewLink(s, cfg), netem.NewLink(s, cfg)
}

// runPipelinedHTTP loads the trace with pipelined HTTP/1.1 over one
// persistent TCP connection: the primary is requested alone; once it
// completes, all secondaries are requested back-to-back and the responses
// arrive strictly in order on the stream.
func runPipelinedHTTP(pages []web.Page) []pageResult {
	s := sim.New(51)
	fwd, back := webLink(s)
	cli, srv := tcp.NewPair(s, tcp.Config{NoDelay: true}, tcp.Config{NoDelay: true}, fwd, back)

	// Server: parse 8-byte requests; respond in order.
	var respQ [][]byte
	reqBuf := make([]byte, 0, 64)
	var srvPump func()
	srvPump = func() {
		for len(respQ) > 0 {
			n, err := srv.Write(respQ[0])
			if n == len(respQ[0]) {
				respQ = respQ[1:]
				continue
			}
			if n > 0 {
				respQ[0] = respQ[0][n:]
			}
			if err != nil {
				return
			}
		}
	}
	srv.OnWritable(srvPump)
	srv.OnReadable(func() {
		buf := make([]byte, 4096)
		for {
			n, _ := srv.Read(buf)
			if n == 0 {
				break
			}
			reqBuf = append(reqBuf, buf[:n]...)
		}
		for len(reqBuf) >= web.RequestSize {
			obj, _ := web.DecodeRequest(reqBuf)
			reqBuf = reqBuf[web.RequestSize:]
			resp := append(web.EncodeResponseHeader(obj), make([]byte, obj.Size)...)
			respQ = append(respQ, resp)
		}
		srvPump()
	})

	var results []pageResult
	pageIdx := 0

	// Client state for the current page.
	var (
		pageStart  time.Duration
		order      []web.Object // expected response order
		parsePos   int          // object index being parsed
		bodyLeft   int
		haveHeader bool
		firstByteT []time.Duration
		startPage  func()
	)
	finishObject := func() {
		parsePos++
		haveHeader = false
		if parsePos == 1 && len(order) == 1 && len(pages[pageIdx].Secondaries) > 0 {
			// Primary done: pipeline all secondary requests.
			var reqs []byte
			for _, o := range pages[pageIdx].Secondaries {
				order = append(order, o)
				reqs = append(reqs, web.EncodeRequest(o)...)
			}
			cli.Write(reqs)
		}
		if parsePos == len(order) && (len(order) > 1 || len(pages[pageIdx].Secondaries) == 0) {
			// Page complete.
			p := pages[pageIdx]
			sum := 0.0
			for _, t := range firstByteT {
				sum += float64(t-pageStart) / float64(time.Millisecond)
			}
			results = append(results, pageResult{
				bucket:  p.Bucket(),
				avgTTFB: sum / float64(len(firstByteT)),
				total:   float64(s.Now()-pageStart) / float64(time.Millisecond),
			})
			pageIdx++
			startPage()
		}
	}
	respBuf := make([]byte, 0, 4096)
	cli.OnReadable(func() {
		buf := make([]byte, 8192)
		for {
			n, _ := cli.Read(buf)
			if n == 0 {
				break
			}
			respBuf = append(respBuf, buf[:n]...)
		}
		for {
			if !haveHeader {
				if len(respBuf) < 8 {
					return
				}
				obj, _ := web.DecodeResponseHeader(respBuf)
				respBuf = respBuf[8:]
				bodyLeft = obj.Size
				haveHeader = true
				firstByteT = append(firstByteT, s.Now())
			}
			if len(respBuf) < bodyLeft {
				bodyLeft -= len(respBuf)
				respBuf = respBuf[:0]
				return
			}
			respBuf = respBuf[bodyLeft:]
			bodyLeft = 0
			finishObject()
		}
	})
	startPage = func() {
		if pageIdx >= len(pages) {
			s.Halt()
			return
		}
		p := pages[pageIdx]
		pageStart = s.Now()
		order = []web.Object{p.Primary}
		parsePos = 0
		haveHeader = false
		firstByteT = firstByteT[:0]
		cli.Write(web.EncodeRequest(p.Primary))
	}
	s.Schedule(time.Second, startPage)
	s.RunUntil(2 * time.Hour)
	return results
}

// runParallelMsTCP loads the trace with HTTP/1.0-style parallel requests
// over msTCP streams on a single uCOBS/uTCP connection: each object gets
// its own stream, so object chunks interleave and a loss on one object
// never delays the first bytes of another (paper §8.5).
func runParallelMsTCP(pages []web.Page) []pageResult {
	s := sim.New(52)
	fwd, back := webLink(s)
	cfg := tcp.Config{NoDelay: true, Unordered: true, UnorderedSend: true, CoalesceWrites: true}
	// The server's transport buffer is kept small so the application-level
	// round-robin below actually controls interleaving; with a huge socket
	// buffer whole objects would be committed to the stream before the
	// next request even arrives.
	srvCfg := cfg
	srvCfg.SendBufBytes = 8 * 1024
	ta, tb := tcp.NewPair(s, cfg, srvCfg, fwd, back)
	cli := mstcp.New(mstcp.OverUCOBS(ucobs.New(ta)))
	srv := mstcp.New(mstcp.OverUCOBS(ucobs.New(tb)))

	// The server interleaves the chunks of concurrently requested objects
	// round-robin across their streams — "msTCP interleaves different
	// objects' chunks within the persistent connection" (§8.5). Sending
	// each object whole would serialize objects exactly like pipelined
	// HTTP/1.1 and forfeit the time-to-first-byte benefit.
	const chunk = 1200
	type job struct {
		st   *mstcp.Stream
		size int
		sent int
		hdr  bool
	}
	var jobs []*job
	var srvPump func()
	srvPump = func() {
		for len(jobs) > 0 {
			progress := false
			keep := jobs[:0]
			for _, j := range jobs {
				if !j.hdr {
					if err := j.st.Send(web.EncodeResponseHeader(web.Object{Size: j.size})); err != nil {
						keep = append(keep, j)
						continue
					}
					j.hdr = true
					progress = true
				}
				n := chunk
				if j.size-j.sent < n {
					n = j.size - j.sent
				}
				if n > 0 {
					if err := j.st.Send(make([]byte, n)); err != nil {
						keep = append(keep, j)
						continue
					}
					j.sent += n
					progress = true
				}
				if j.sent >= j.size {
					if err := j.st.Close(); err != nil {
						keep = append(keep, j)
						continue
					}
					progress = true
					continue
				}
				keep = append(keep, j)
			}
			jobs = keep
			if !progress {
				return // transport full; resume on writable
			}
		}
	}
	tb.OnWritable(srvPump)
	srv.OnStream(func(st *mstcp.Stream) {
		st.OnMessage(func(m []byte) {
			obj, ok := web.DecodeRequest(m)
			if !ok {
				return
			}
			jobs = append(jobs, &job{st: st, size: obj.Size})
			srvPump()
		})
	})

	var results []pageResult
	pageIdx := 0
	var startPage func()
	s.Schedule(time.Second, func() { startPage() })

	startPage = func() {
		if pageIdx >= len(pages) {
			s.Halt()
			return
		}
		p := pages[pageIdx]
		pageStart := s.Now()
		var firstBytes []time.Duration
		remaining := p.Requests()

		finish := func() {
			remaining--
			if remaining > 0 {
				return
			}
			sum := 0.0
			for _, t := range firstBytes {
				sum += float64(t-pageStart) / float64(time.Millisecond)
			}
			results = append(results, pageResult{
				bucket:  p.Bucket(),
				avgTTFB: sum / float64(len(firstBytes)),
				total:   float64(s.Now()-pageStart) / float64(time.Millisecond),
			})
			pageIdx++
			startPage()
		}
		fetch := func(o web.Object, done func()) {
			st := cli.Open()
			got := 0
			first := true
			st.OnMessage(func(m []byte) {
				if first {
					first = false
					firstBytes = append(firstBytes, s.Now())
					return // header message
				}
				got += len(m)
				if got >= o.Size {
					done()
				}
			})
			st.Send(web.EncodeRequest(o))
		}
		// Primary alone, then all secondaries in parallel.
		fetch(p.Primary, func() {
			if len(p.Secondaries) == 0 {
				finish()
				return
			}
			finish2 := finish
			for _, o := range p.Secondaries {
				fetch(o, finish2)
			}
			finish() // account the primary itself
		})
	}
	s.RunUntil(2 * time.Hour)
	return results
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Fig13 regenerates the trace-driven web comparison: parallel HTTP/1.0
// over msTCP vs pipelined HTTP/1.1 over TCP. msTCP roughly halves the mean
// time-to-first-byte on multi-object pages while leaving total page load
// time essentially unchanged (paper §8.5).
func Fig13(sc Scale) Result {
	nPages := sc.picki(60, 300)
	pages := web.NewTraceGen(99).Trace(nPages)

	pipe := runPipelinedHTTP(pages)
	par := runParallelMsTCP(pages)

	type agg struct{ ttfbP, ttfbM, totalP, totalM []float64 }
	buckets := map[string]*agg{}
	for _, b := range []string{"1-2", "3-8", "9+"} {
		buckets[b] = &agg{}
	}
	for _, r := range pipe {
		a := buckets[r.bucket]
		a.ttfbP = append(a.ttfbP, r.avgTTFB)
		a.totalP = append(a.totalP, r.total)
	}
	for _, r := range par {
		a := buckets[r.bucket]
		a.ttfbM = append(a.ttfbM, r.avgTTFB)
		a.totalM = append(a.totalM, r.total)
	}

	tb := metrics.Table{
		Title:   fmt.Sprintf("Trace-driven page loads (%d pages, 1.5 Mbps, 60 ms RTT); medians per bucket", nPages),
		Columns: []string{"reqs/page", "pages", "TTFB http/1.1 ms", "TTFB msTCP ms", "ratio", "load http/1.1 ms", "load msTCP ms"},
	}
	for _, b := range []string{"1-2", "3-8", "9+"} {
		a := buckets[b]
		tp, tm := median(a.ttfbP), median(a.ttfbM)
		ratio := 0.0
		if tp > 0 {
			ratio = tm / tp
		}
		tb.AddRow(b, fmt.Sprintf("%d", len(a.ttfbP)),
			fmt.Sprintf("%.0f", tp), fmt.Sprintf("%.0f", tm), fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.0f", median(a.totalP)), fmt.Sprintf("%.0f", median(a.totalM)))
	}
	return Result{Name: "fig13", Title: "Pipelined HTTP/1.1 over TCP vs parallel HTTP/1.0 over msTCP", Output: tb.String()}
}
