package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseTable pulls the data rows out of a rendered table.
func parseRows(t *testing.T, out string) [][]string {
	t.Helper()
	var rows [][]string
	lines := strings.Split(strings.TrimSpace(out), "\n")
	dataStart := 0
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "---") {
			dataStart = i + 1
			break
		}
	}
	for _, l := range lines[dataStart:] {
		f := strings.Fields(l)
		if len(f) > 0 {
			rows = append(rows, f)
		}
	}
	return rows
}

func fval(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// Figure 5's shape: parity at MSS-divisible sizes, a pronounced dip at
// 1000 bytes (the skbuff-counting artifact).
func TestFig5Shape(t *testing.T) {
	rows := parseRows(t, Fig5(Quick).Output)
	ratios := map[string]float64{}
	for _, r := range rows {
		ratios[r[0]] = fval(t, r[3])
	}
	for _, sz := range []string{"362", "724", "1448", "2896"} {
		if ratios[sz] < 0.9 {
			t.Errorf("size %s: ratio %.2f, want parity (>0.9)", sz, ratios[sz])
		}
	}
	if ratios["1000"] > 0.9 {
		t.Errorf("size 1000: ratio %.2f, want a dip (<0.9)", ratios["1000"])
	}
	if ratios["1000"] < 0.5 {
		t.Errorf("size 1000: ratio %.2f implausibly deep", ratios["1000"])
	}
}

// Figure 7's headline: under contention uCOBS delivers a (much) larger
// fraction of frames within 200 ms than TCP, and UDP loses frames.
func TestFig7Shape(t *testing.T) {
	rows := parseRows(t, Fig7(Quick).Output)
	vals := map[string][]string{}
	for _, r := range rows {
		vals[r[0]] = r
	}
	ucobs200 := fval(t, vals["uCOBS"][4])
	tcp200 := fval(t, vals["TCP"][4])
	udpDelivered := fval(t, vals["UDP"][7])
	if ucobs200 <= tcp200 {
		t.Errorf("uCOBS <=200ms %.2f not better than TCP %.2f", ucobs200, tcp200)
	}
	if ucobs200 < 0.90 {
		t.Errorf("uCOBS <=200ms = %.2f, want >= 0.90", ucobs200)
	}
	if udpDelivered >= 1.0 {
		t.Errorf("UDP delivered everything (%.3f); expected loss", udpDelivered)
	}
}

// Figure 8: most uCOBS bursts are short; TCP produces long bursts.
func TestFig8Shape(t *testing.T) {
	rows := parseRows(t, Fig8(Quick).Output)
	vals := map[string][]string{}
	for _, r := range rows {
		vals[r[0]] = r
	}
	// columns: transport bursts <=1 <=2 <=3 <=5 <=10 <=20 <=50
	ucobs3 := fval(t, vals["uCOBS"][4])
	tcp10 := fval(t, vals["TCP"][6])
	if ucobs3 < 0.6 {
		t.Errorf("uCOBS bursts <=3 = %.2f, want most short", ucobs3)
	}
	if tcp10 > 0.8 {
		t.Errorf("TCP bursts <=10 = %.2f, want a heavy tail (>20%% longer than 10)", tcp10)
	}
}

// Figure 9: by the heaviest-contention window TCP's quality collapses
// below uCOBS, which stays closer to UDP.
func TestFig9Shape(t *testing.T) {
	rows := parseRows(t, Fig9(Quick).Output)
	vals := map[string][]string{}
	for _, r := range rows {
		vals[r[0]] = r
	}
	last := len(vals["uCOBS"]) - 1
	ucobs := fval(t, vals["uCOBS"][last])
	tcp := fval(t, vals["TCP"][last])
	udp := fval(t, vals["UDP"][last])
	if ucobs <= tcp {
		t.Errorf("final window: uCOBS %.2f <= TCP %.2f", ucobs, tcp)
	}
	if udp < 1 || udp > 4.5 || ucobs < 1 || tcp < 1 {
		t.Errorf("scores out of range: %v %v %v", ucobs, tcp, udp)
	}
}

// Figure 10: high-priority messages see far lower delay on uTCP only.
func TestFig10Shape(t *testing.T) {
	rows := parseRows(t, Fig10(Quick).Output)
	med := map[string]float64{}
	for _, r := range rows {
		med[r[0]+"/"+r[1]] = fval(t, r[3])
	}
	if med["uTCP/high"] >= med["uTCP/low"]/3 {
		t.Errorf("uTCP high %.1fms not ≪ low %.1fms", med["uTCP/high"], med["uTCP/low"])
	}
	if med["TCP/high"] < med["TCP/low"]*0.5 || med["TCP/high"] > med["TCP/low"]*2 {
		t.Errorf("TCP classes should be similar: high %.1f low %.1f", med["TCP/high"], med["TCP/low"])
	}
}

// Figure 11: with competing uploads, the modified tunnel clearly beats the
// original; without uploads they are equivalent.
func TestFig11Shape(t *testing.T) {
	rows := parseRows(t, Fig11(Quick).Output)
	for _, r := range rows {
		n := r[0]
		ratio := fval(t, r[3])
		if n == "0" {
			if ratio < 0.8 || ratio > 1.3 {
				t.Errorf("no uploads: ratio %.2f, want ~1", ratio)
			}
			continue
		}
		if ratio < 1.5 {
			t.Errorf("%s uploads: modified/original %.2f, want >= 1.5", n, ratio)
		}
	}
}

// Figure 13: msTCP cuts TTFB on request-heavy pages without inflating
// total page load time.
func TestFig13Shape(t *testing.T) {
	rows := parseRows(t, Fig13(Quick).Output)
	for _, r := range rows {
		if r[0] != "9+" {
			continue
		}
		ratio := fval(t, r[4])
		if ratio > 0.85 {
			t.Errorf("9+ TTFB ratio %.2f, want msTCP clearly faster (<0.85)", ratio)
		}
		loadP, loadM := fval(t, r[5]), fval(t, r[6])
		if loadM > loadP*1.3 {
			t.Errorf("total load inflated: %.0f vs %.0f", loadM, loadP)
		}
	}
}

// Table 1: the uTCP delta is a small fraction of the TCP substrate.
func TestTable1Shape(t *testing.T) {
	out := Table1().Output
	rows := parseRows(t, out)
	var tcpLoC, utcpDelta float64
	for _, r := range rows {
		switch r[0] {
		case "TCP":
			if r[1] == "substrate" {
				tcpLoC = fval(t, r[2])
			}
		case "uTCP":
			if r[1] == "additions" {
				utcpDelta = fval(t, r[2])
			}
		}
	}
	if tcpLoC == 0 || utcpDelta == 0 {
		t.Fatalf("LoC counting failed:\n%s", out)
	}
	if utcpDelta/tcpLoC > 0.2 {
		t.Errorf("uTCP delta %.0f is %.0f%% of TCP %.0f; want a small fraction",
			utcpDelta, 100*utcpDelta/tcpLoC, tcpLoC)
	}
}

// Figure 6b: uTLS adds no bandwidth beyond TLS.
func TestFig6bNoBandwidthOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("cpu experiment")
	}
	rows := parseRows(t, Fig6b(Quick).Output)
	for _, r := range rows {
		if r[len(r)-1] != "B" && !strings.HasPrefix(r[len(r)-2], "+0") {
			t.Errorf("bandwidth overhead row: %v", r)
		}
	}
}

// The scale knobs must actually differ.
func TestScalePick(t *testing.T) {
	if Quick.pick(time.Second, time.Minute) != time.Second {
		t.Fatal("Quick pick broken")
	}
	if Full.pick(time.Second, time.Minute) != time.Minute {
		t.Fatal("Full pick broken")
	}
	if Quick.picki(1, 2) != 1 || Full.picki(1, 2) != 2 {
		t.Fatal("picki broken")
	}
}
