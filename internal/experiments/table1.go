package experiments

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"minion/internal/metrics"
)

// Table1 regenerates the implementation-complexity comparison (paper §8.6,
// Table 1): how small the uTCP and uTLS deltas are relative to the stacks
// they extend, against the size of "native" out-of-order transports.
//
// For this reproduction the counts are of our own Go tree (non-blank,
// non-comment lines, tests excluded): the TCP substrate package stands in
// for the Linux stack, and the uTCP delta is counted structurally (the
// declarations implementing SO_UNORDERED / SO_UNORDEREDSEND). The paper's
// original C numbers are printed alongside for comparison; the claim being
// reproduced is the *ratio* — unordered delivery is a small fractional
// change to an existing stack, not a new transport.
func Table1() Result {
	root := repoRoot()

	count := func(rel string) int {
		n, err := countDirLoC(filepath.Join(root, rel))
		if err != nil {
			return -1
		}
		return n
	}

	tcpLoC := count("internal/tcp")
	utcpDelta := countUTCPDelta(filepath.Join(root, "internal/tcp"))
	cobsLoC := count("internal/cobs") + count("internal/ucobs")
	tlsLoC := count("internal/tlsrec")
	utlsLoC := count("internal/utls")

	pct := func(d, whole int) string {
		if whole <= 0 {
			return "?"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(whole))
	}

	tb := metrics.Table{
		Title:   "Code size (non-blank, non-comment LoC, tests excluded) vs paper Table 1",
		Columns: []string{"component", "ours LoC", "ours delta", "paper LoC", "paper delta"},
	}
	tb.AddRow("TCP substrate", fmt.Sprintf("%d", tcpLoC), "-", "12982 (Linux)", "-")
	tb.AddRow("uTCP additions", fmt.Sprintf("%d", utcpDelta), pct(utcpDelta, tcpLoC), "565", "4.6%")
	tb.AddRow("uCOBS library (+COBS)", fmt.Sprintf("%d", cobsLoC), "-", "732", "-")
	tb.AddRow("TLS record layer", fmt.Sprintf("%d", tlsLoC), "-", "31359 (libssl)", "-")
	tb.AddRow("uTLS additions", fmt.Sprintf("%d", utlsLoC), pct(utlsLoC, tlsLoC+utlsLoC), "586", "1.9%")
	tb.AddRow("native DCCP (for scale)", "-", "-", "6338", "-")
	tb.AddRow("native SCTP (for scale)", "-", "-", "19312", "-")
	tb.AddRow("DTLS (for scale)", "-", "-", "4734", "-")
	return Result{Name: "table1", Title: "Implementation complexity", Output: tb.String()}
}

// repoRoot locates the module root from this source file's location.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// countDirLoC counts non-blank, non-comment lines across a package's
// non-test Go files (a cloc-style count, like the paper's).
func countDirLoC(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		total += countLoC(string(data))
	}
	return total, nil
}

// countLoC counts non-blank lines that are not entirely comment.
func countLoC(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if inBlock {
			if idx := strings.Index(t, "*/"); idx >= 0 {
				inBlock = false
				t = strings.TrimSpace(t[idx+2:])
			} else {
				continue
			}
		}
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		if strings.HasPrefix(t, "/*") {
			if !strings.Contains(t, "*/") {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n
}

// utcpDeclNames are the declarations in internal/tcp that exist only for
// the uTCP extensions (SO_UNORDERED receive path, SO_UNORDEREDSEND
// priority send path) — the structural equivalent of the paper's kernel
// patch delta.
var utcpDeclNames = map[string]bool{
	"WriteMsg":           true,
	"WriteOptions":       true,
	"enqueueWrite":       true,
	"squash":             true,
	"plannedPayloadLen":  true,
	"ReadUnordered":      true,
	"UnorderedAvailable": true,
	"UnorderedData":      true,
	"StreamOffsetOf":     true,
	"TagDefault":         true,
}

// countUTCPDelta sums the source-line spans of the uTCP-specific
// declarations in the tcp package.
func countUTCPDelta(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return -1
	}
	total := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					if utcpDeclNames[d.Name.Name] {
						total += span(fset, d)
						return false
					}
				case *ast.TypeSpec:
					if utcpDeclNames[d.Name.Name] {
						total += span(fset, d)
						return false
					}
				case *ast.ValueSpec:
					for _, name := range d.Names {
						if utcpDeclNames[name.Name] {
							total += span(fset, d)
							return false
						}
					}
				}
				return true
			})
		}
	}
	return total
}

func span(fset *token.FileSet, n ast.Node) int {
	return fset.Position(n.End()).Line - fset.Position(n.Pos()).Line + 1
}
