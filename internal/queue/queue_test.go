package queue

import "testing"

func TestFIFOOrderAndReuse(t *testing.T) {
	var q FIFO[int]
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue returned non-nil")
	}
	// Interleaved push/pop across several drain cycles must preserve FIFO
	// order and reuse the backing array once drained.
	next := 0
	pushed := 0
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 100; i++ {
			q.Push(pushed)
			pushed++
		}
		for q.Len() > 50 {
			v, ok := q.Pop()
			if !ok || v != next {
				t.Fatalf("cycle %d: Pop = %d,%v want %d", cycle, v, ok, next)
			}
			next++
		}
		for q.Len() > 0 {
			v, ok := q.Pop()
			if !ok || v != next {
				t.Fatalf("cycle %d drain: Pop = %d,%v want %d", cycle, v, ok, next)
			}
			next++
		}
		if q.head != 0 || len(q.items) != 0 {
			t.Fatalf("cycle %d: queue not reset after drain (head=%d len=%d)", cycle, q.head, len(q.items))
		}
	}
	if cap(q.items) == 0 || cap(q.items) > 256 {
		t.Fatalf("backing array not reused across cycles (cap=%d)", cap(q.items))
	}
}

func TestFIFOPeekMutation(t *testing.T) {
	var q FIFO[[]byte]
	q.Push([]byte("abcdef"))
	p := q.Peek()
	*p = (*p)[2:] // partial consumption in place
	if string(*q.Peek()) != "cdef" {
		t.Fatalf("in-place mutation lost: %q", *q.Peek())
	}
	v, _ := q.Pop()
	if string(v) != "cdef" {
		t.Fatalf("Pop after mutation = %q", v)
	}
}

func TestFIFOPopClearsSlot(t *testing.T) {
	var q FIFO[*int]
	x := new(int)
	q.Push(x)
	q.Push(new(int)) // keep queue non-empty so the slot isn't resliced away
	q.Pop()
	// The vacated slot must not retain the pointer.
	if q.items[0] != nil {
		t.Fatal("popped slot retains reference")
	}
}

// TestFIFOBoundedWithoutFullDrain guards the compaction path: a queue
// that cycles while never fully draining must not grow its backing array
// with total throughput.
func TestFIFOBoundedWithoutFullDrain(t *testing.T) {
	var q FIFO[int]
	q.Push(-1) // keeps the queue permanently non-empty
	next := 0
	for i := 0; i < 100000; i++ {
		q.Push(i)
		v, ok := q.Pop()
		want := next - 1 // the sentinel first, then FIFO order
		if !ok || v != want {
			t.Fatalf("iteration %d: Pop = %d,%v want %d", i, v, ok, want)
		}
		next++
	}
	if c := cap(q.items); c > 1024 {
		t.Fatalf("backing array grew with throughput: cap = %d after 100k cycles at depth 1", c)
	}
}

func TestFIFOAllocSteadyState(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 64; i++ {
		q.Push(i)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Push(i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state push/pop cycle allocates (%.1f allocs/run)", avg)
	}
}
