// Package queue provides the head-indexed FIFO backing the datapath's
// delivery and receive queues. Pops advance a head cursor in O(1) — no
// per-pop element shifting — and the backing array is reused from the
// start each time the queue fully drains, so steady-state push/pop cycling
// allocates nothing. Vacated slots are zeroed so the array retains no
// references (pooled buffers, message slices) past their pop.
package queue

// FIFO is a head-indexed first-in-first-out queue. The zero value is an
// empty queue ready for use.
type FIFO[T any] struct {
	items []T
	head  int
}

// Len returns the number of queued elements.
func (f *FIFO[T]) Len() int { return len(f.items) - f.head }

// Push appends v to the tail.
func (f *FIFO[T]) Push(v T) { f.items = append(f.items, v) }

// Peek returns a pointer to the head element for in-place partial
// consumption, or nil when the queue is empty. The pointer is valid until
// the next Push or Pop.
func (f *FIFO[T]) Peek() *T {
	if f.head == len(f.items) {
		return nil
	}
	return &f.items[f.head]
}

// Pop removes and returns the head element; ok is false when the queue is
// empty.
func (f *FIFO[T]) Pop() (v T, ok bool) {
	if f.head == len(f.items) {
		return v, false
	}
	var zero T
	v = f.items[f.head]
	f.items[f.head] = zero
	f.head++
	switch {
	case f.head == len(f.items):
		f.items, f.head = f.items[:0], 0
	case f.head > compactThreshold && f.head > len(f.items)/2:
		// A queue that cycles without ever fully draining would otherwise
		// append forever past a growing dead prefix; compact once the dead
		// space dominates (amortized O(1) per pop).
		n := copy(f.items, f.items[f.head:])
		clear(f.items[n:])
		f.items, f.head = f.items[:n], 0
	}
	return v, true
}

// compactThreshold is the dead-prefix length above which Pop considers
// compacting the backing array.
const compactThreshold = 32
