package utcp

import (
	"minion/internal/buf"
	"minion/internal/rt"
	"minion/internal/tcp"
	"minion/internal/udp"
)

// WireStats counts the codec boundary's activity for one binding.
type WireStats struct {
	// PacketsOut is segments encoded and handed to the shim.
	PacketsOut int64
	// PacketsIn is packets that decoded cleanly and reached the ARQ.
	PacketsIn int64
	// Malformed is packets rejected by Decode (truncation, bad magic,
	// unknown flags, bogus SACK). The ARQ never sees them; loss recovery
	// retransmits whatever they carried.
	Malformed int64
}

// Binding is a tcp.Conn attached to a datagram shim through the packet
// codec: segments out become UDP datagrams, datagrams in become segments.
// All of it is confined to the runtime the connection was bound on — the
// shim must deliver on that runtime's executor and the Binding must only
// be touched there.
type Binding struct {
	tc   *tcp.Conn
	shim *udp.Conn

	// Decode scratch, reused per packet: Input is serial on the loop and
	// the ARQ retains payload only via refcounted buffer slices, never
	// the Segment struct itself.
	seg   tcp.Segment
	sack  [tcp.MaxSACKBlocks]tcp.SACKBlock
	stats WireStats
}

// Bind creates a uTCP connection on runtime r carried by shim. The same
// call hosts both worlds: a simulator runtime with an emulated link
// (conformance tests) or a wire.UDPConn's loop and internal shim (real
// sockets). cfg.MSS zero defaults to DefaultMSS, sized for UDP carriage.
//
// Bind wires the shim's receive callback; the caller wires the shim's
// output (wire.UDPConn already has, netem topologies use udp.Wire) and
// then drives the returned binding's Conn — Listen or Connect — on the
// runtime's executor. Datagrams the shim queued before Bind are flushed
// through the codec in arrival order.
func Bind(r rt.Runtime, shim *udp.Conn, cfg tcp.Config) *Binding {
	if cfg.MSS == 0 {
		cfg.MSS = DefaultMSS
	}
	b := &Binding{shim: shim}
	b.tc = tcp.New(r, cfg, func(seg *tcp.Segment) {
		b.stats.PacketsOut++
		shim.SendBuf(Encode(seg))
	})
	shim.OnMessageBuf(b.Input)
	for {
		m, ok := shim.Recv()
		if !ok {
			break
		}
		b.Input(buf.From(m))
	}
	return b
}

// Conn returns the bound connection (use it only on the runtime's
// executor, like any tcp.Conn).
func (b *Binding) Conn() *tcp.Conn { return b.tc }

// Stats returns a copy of the codec counters.
func (b *Binding) Stats() WireStats { return b.stats }

// Input feeds one arrived datagram through the codec into the ARQ,
// taking ownership of pb. Malformed packets count and drop — to the
// sender they are indistinguishable from network loss, and retransmission
// recovers the data. Payload-bearing packets hand the receiver a
// refcounted slice of pb so in-window bytes are retained without a copy.
func (b *Binding) Input(pb *buf.Buffer) {
	seg := &b.seg
	*seg = tcp.Segment{}
	if err := Decode(pb.Bytes(), seg, &b.sack); err != nil {
		b.stats.Malformed++
		pb.Release()
		return
	}
	b.stats.PacketsIn++
	if len(seg.Payload) > 0 {
		seg.Buf = pb.Slice(pb.Len()-len(seg.Payload), pb.Len())
	}
	b.tc.Input(seg)
	if seg.Buf != nil {
		seg.Buf.Release()
		seg.Buf = nil
	}
	pb.Release()
}
