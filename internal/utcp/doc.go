// Package utcp hosts the simulator's uTCP machinery (internal/tcp) on
// real infrastructure: wall-clock rt.Loop timers and internal/wire's UDP
// sockets, turning the paper's SO_UNORDERED/SO_UNORDEREDSEND prototype
// into a deployable userspace reliable transport — the KCP shape, but
// with the exact sender/receiver the simulation experiments pin.
//
// The split of responsibilities:
//
//   - codec.go maps tcp.Segment to a 24-byte UDP packet header plus SACK
//     blocks and payload (docs/WIREFORMAT.md "uTCP over UDP"), moving
//     pooled buffers in both directions: encode copies payload once into
//     the outgoing datagram, decode hands the receiver a refcounted
//     slice of the incoming one (the zero-copy fast path in
//     tcp.processData engages because the slice aliases the payload).
//   - Bind attaches a tcp.Conn to any datagram shim (udp.Conn) on any
//     rt.Runtime — the simulator in conformance tests, a wire.UDPConn
//     loop in deployment — so the same state machine is driven by
//     simulated and wall-clock time with zero behavioural divergence.
//   - Dial/Listen bind over real sockets: a connected wire.UDPConn per
//     client, and a demuxing wire.UDPPacketConn listener that routes
//     datagrams by source address to per-peer endpoints.
//
// Because a userspace ARQ is exactly the kind of code that is subtly
// wrong under loss/reorder/duplication, the package carries its own
// conformance layer: golden-trace tests drive the simulated and
// UDP-carried paths with identical scripted fault schedules and assert
// identical delivery, and a fuzz target feeds the receiver adversarial
// packets asserting no panic, no double-delivery, and a balanced buffer
// ledger.
package utcp
