package utcp

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"minion/internal/buf"
	"minion/internal/tcp"
	"minion/internal/wire"
)

// leakCheck snapshots the buffer-pool ledger and goroutine count and
// asserts both return to baseline at cleanup — every transport test runs
// under it so a leaked arena or reader goroutine fails the suite, not a
// later one.
func leakCheck(t *testing.T) {
	t.Helper()
	bufBefore := buf.Stats()
	goroBefore := runtime.NumGoroutine()
	t.Cleanup(func() {
		wire.SetFaultHooks(nil)
		waitBufBalance(t, bufBefore)
		waitGoroutines(t, goroBefore)
	})
}

func waitBufBalance(t *testing.T, before buf.PoolStats) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var g, p, u uint64
	for time.Now().Before(deadline) {
		now := buf.Stats()
		g, p, u = now.Gets-before.Gets, now.Puts-before.Puts, now.Unpooled-before.Unpooled
		if p >= g-u {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("buffer leak: ΔGets=%d ΔUnpooled=%d ΔPuts=%d (want puts >= gets-unpooled)", g, u, p)
}

func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines did not return: %d now vs %d baseline", runtime.NumGoroutine(), before)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// dialLoopback spins up a listener and a dialed client on 127.0.0.1 and
// returns both ends established-or-establishing, with cleanup wired.
func dialLoopback(t *testing.T, cliCfg, srvCfg tcp.Config) (*Client, *Endpoint, *Listener) {
	t.Helper()
	ln, err := Listen("udp", "127.0.0.1:0", ListenerConfig{Config: srvCfg})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(ln.Close)
	cli, err := Dial("udp", ln.Addr().String(), cliCfg, wire.UDPConfig{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(cli.Close)
	ep, err := ln.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	return cli, ep, ln
}

// TestLoopbackEcho pushes a payload client→server over real loopback
// sockets, echoes it back, and closes gracefully — the basic end-to-end
// sanity of handshake, data, ACK clock, and FIN teardown on wall-clock
// timers.
func TestLoopbackEcho(t *testing.T) {
	leakCheck(t)
	cli, ep, _ := dialLoopback(t, tcp.Config{NoDelay: true}, tcp.Config{NoDelay: true})

	const total = 256 * 1024
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	// Server: echo everything back, close after echoing total bytes.
	echoed := 0
	ep.Do(func() {
		sc := ep.Conn()
		rbuf := make([]byte, 64*1024)
		var pump func()
		pump = func() {
			for {
				n, err := sc.Read(rbuf)
				if n > 0 {
					if _, werr := sc.Write(rbuf[:n]); werr != nil {
						t.Errorf("server write: %v", werr)
					}
					echoed += n
				}
				if err != nil || n == 0 {
					break
				}
			}
			if echoed >= total {
				sc.Close()
			}
		}
		sc.OnReadable(pump)
	})

	// Client: write all, then read the echo back.
	written := 0
	cli.Do(func() {
		cc := cli.Conn()
		var fill func()
		fill = func() {
			for written < total {
				n, err := cc.Write(payload[written:])
				written += n
				if err == tcp.ErrWouldBlock {
					return // OnWritable refills
				}
				if err != nil {
					t.Errorf("client write: %v", err)
					return
				}
			}
		}
		cc.OnWritable(fill)
		fill()
	})

	got := make([]byte, 0, total)
	readDone := make(chan struct{})
	cli.Do(func() {
		cc := cli.Conn()
		rbuf := make([]byte, 64*1024)
		cc.OnReadable(func() {
			for {
				n, err := cc.Read(rbuf)
				if n > 0 {
					got = append(got, rbuf[:n]...)
				}
				if err != nil || n == 0 {
					break
				}
			}
			if len(got) >= total {
				select {
				case <-readDone:
				default:
					close(readDone)
				}
			}
		})
	})

	select {
	case <-readDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("timeout: %d/%d echoed back", len(got), total)
	}
	var ok bool
	cli.Do(func() { ok = bytes.Equal(got[:total], payload) })
	if !ok {
		t.Fatal("echoed payload differs")
	}

	// Graceful teardown: close the client side, wait for the close
	// callback, then release sockets.
	closed := make(chan error, 1)
	cli.Do(func() {
		cc := cli.Conn()
		cc.OnClose(func(err error) { closed <- err })
		cc.Close()
	})
	select {
	case err := <-closed:
		if err != nil && err != tcp.ErrClosed {
			t.Errorf("close surfaced %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("graceful close did not complete")
	}
	ep.Detach()
}
