package utcp

import (
	"sort"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"minion/internal/tcp"
	"minion/internal/wire"
)

// The HOL-blocking regression: the paper's figure-of-merit is that under
// loss, unordered delivery hands the application everything that arrived
// while in-order delivery stalls behind the hole. runHOL measures
// per-message delivery latency through real loopback sockets under an
// identical index-scheduled loss pattern, once with the receiver in
// unordered mode and once in classic in-order mode; the test pins the
// margin between the two latency distributions.

const (
	holMsgN   = 400 // messages whose latency is measured
	holFlushN = 16  // trailing flushers: keep dupacks flowing past the tail
	holMsgLen = 600
	holTotal  = holMsgN * holMsgLen
)

// holLossHook drops every 16th data-sized datagram (~6%), by transmit
// index. The hook sees only sizes: data datagrams run ~624 bytes
// (header + 600B payload) while ACKs, handshake, and FIN segments stay
// under ~120, so a 400-byte threshold cleanly selects the data stream.
// Index-based dropping makes the schedule deterministic for a run,
// independent of timing.
func holLossHook() *wire.FaultHooks {
	var dataIdx atomic.Int64
	return &wire.FaultHooks{Write: func(size int) (int, error) {
		if size <= 400 {
			return 0, nil
		}
		if dataIdx.Add(1)%16 == 7 {
			return 0, syscall.ECONNREFUSED
		}
		return 0, nil
	}}
}

// runHOL runs one paced transfer and returns per-message latencies,
// sendT→doneT. unordered selects the receiver's delivery mode; everything
// else — pacing, payload, loss schedule — is identical across modes.
func runHOL(t *testing.T, unordered bool) []time.Duration {
	t.Helper()
	cli, ep, _ := dialLoopback(t,
		tcp.Config{NoDelay: true},
		tcp.Config{NoDelay: true, Unordered: unordered},
	)
	wire.SetFaultHooks(holLossHook())
	defer wire.SetFaultHooks(nil)

	sendT := make([]time.Time, holMsgN)
	doneT := make([]time.Time, holMsgN) // written on the server loop
	allDone := make(chan struct{})
	remaining := holMsgN
	finish := func(m int, now time.Time) {
		doneT[m] = now
		remaining--
		if remaining == 0 {
			close(allDone)
		}
	}

	ep.Do(func() {
		sc := ep.Conn()
		if unordered {
			// A message completes when its 600-byte slot is fully covered;
			// per-byte dedup because redelivery is at-least-once.
			seen := make([]bool, holTotal)
			remain := make([]int, holMsgN)
			for i := range remain {
				remain[i] = holMsgLen
			}
			sc.OnReadable(func() {
				for {
					d, err := sc.ReadUnordered()
					if err != nil {
						return
					}
					now := time.Now()
					for j := range d.Data {
						o := int(d.Offset) + j
						if o >= holTotal || seen[o] {
							continue
						}
						seen[o] = true
						m := o / holMsgLen
						remain[m]--
						if remain[m] == 0 {
							finish(m, now)
						}
					}
					d.Release()
				}
			})
		} else {
			// A message completes when the cumulative stream crosses its
			// end — the only signal an in-order receiver ever gets.
			var got int
			rbuf := make([]byte, 64*1024)
			sc.OnReadable(func() {
				for {
					n, err := sc.Read(rbuf)
					if n > 0 {
						now := time.Now()
						prev := got
						got += n
						for m := prev / holMsgLen; m < got/holMsgLen && m < holMsgN; m++ {
							finish(m, now)
						}
					}
					if err != nil || n == 0 {
						return
					}
				}
			})
		}
	})

	// Paced sender: one message every ~2ms, so the wire is never
	// saturated and latency measures delivery stall, not queueing.
	payload := make([]byte, holMsgLen)
	for i := 0; i < holMsgN+holFlushN; i++ {
		for j := range payload {
			payload[j] = byte(i*31 + j)
		}
		if i < holMsgN {
			sendT[i] = time.Now()
		}
		for off := 0; off < holMsgLen; {
			var n int
			var werr error
			if !cli.Do(func() { n, werr = cli.Conn().Write(payload[off:]) }) {
				t.Fatal("client loop closed mid-send")
			}
			off += n
			if werr == tcp.ErrWouldBlock {
				time.Sleep(time.Millisecond)
				continue
			}
			if werr != nil {
				t.Fatalf("client write %d: %v", i, werr)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	select {
	case <-allDone:
	case <-time.After(60 * time.Second):
		var left int
		ep.Do(func() { left = remaining })
		t.Fatalf("timeout: %d/%d messages incomplete (unordered=%v)", left, holMsgN, unordered)
	}
	wire.SetFaultHooks(nil)

	// Graceful close so leakCheck sees a drained world.
	closed := make(chan struct{})
	ep.Do(func() { ep.Conn().OnClose(func(error) { close(closed) }) })
	cli.Do(func() { cli.Conn().Close() })
	ep.Do(func() { ep.Conn().Close() })
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Error("graceful close did not complete")
	}
	ep.Detach()

	lat := make([]time.Duration, holMsgN)
	ep.Do(func() { // synchronize doneT with the loop that wrote it
		for i := range lat {
			lat[i] = doneT[i].Sub(sendT[i])
		}
	})
	return lat
}

func pctl(lat []time.Duration, p int) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*p/100]
}

// TestUnorderedBeatsInOrderUnderLoss pins the HOL margin: with ~6% data
// loss, the in-order receiver's p90 latency must exceed twice the
// unordered receiver's — roughly a quarter of the messages sit behind a
// hole for a loss-recovery round trip that unordered delivery never pays
// — and the unordered tail must be no worse than the in-order tail.
func TestUnorderedBeatsInOrderUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("paced loss-schedule regression skipped in -short")
	}
	leakCheck(t)

	ooo := runHOL(t, true)
	inorder := runHOL(t, false)

	oooP50, oooP90, oooP99 := pctl(ooo, 50), pctl(ooo, 90), pctl(ooo, 99)
	inP50, inP90, inP99 := pctl(inorder, 50), pctl(inorder, 90), pctl(inorder, 99)
	t.Logf("unordered p50=%v p90=%v p99=%v", oooP50, oooP90, oooP99)
	t.Logf("in-order  p50=%v p90=%v p99=%v", inP50, inP90, inP99)

	// The pinned margin. Both modes pay recovery latency for the lost
	// messages themselves (the p99 neighborhood); only in-order mode also
	// stalls the messages queued behind each hole, which is where the p90
	// mass diverges.
	if inP90 < 2*oooP90 {
		t.Errorf("HOL margin lost: in-order p90 %v < 2× unordered p90 %v", inP90, oooP90)
	}
	// Both tails sit at the fast-retransmit recovery latency of the lost
	// messages themselves — equal up to scheduling jitter — so the tail
	// check only guards against a structural regression (an unordered
	// receiver falling back to RTO-paced recovery lands 25× higher).
	if oooP99 > 2*inP99 {
		t.Errorf("unordered tail regressed past in-order: p99 %v > 2× %v", oooP99, inP99)
	}
}
