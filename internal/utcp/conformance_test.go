package utcp

import (
	"fmt"
	"testing"
	"time"

	"minion/internal/buf"
	"minion/internal/netem"
	"minion/internal/rt"
	"minion/internal/sim"
	"minion/internal/tcp"
	"minion/internal/udp"
)

// The conformance suite proves the tentpole's central claim: hosting the
// uTCP machinery behind the packet codec on a datagram substrate changes
// nothing about protocol behavior. The same tcp.Conn state machines run
// twice on the deterministic simulator — once wired segment-to-segment
// (the repo's original sim substrate) and once through Encode/Decode over
// udp shims (the real-socket wire format) — under an identical scripted
// loss/reorder/duplication schedule, and must produce byte-identical
// delivery traces and identical protocol counters.

// schedule scripts one direction of a path by transmit index: the nth
// Send is dropped, duplicated, or delayed regardless of what it carries —
// the same schedule therefore applies to segments and to datagrams.
type schedule struct {
	drop  map[int]bool
	dup   map[int]bool
	delay map[int]time.Duration // extra latency (reordering)
}

// scriptedPath is a deterministic netem.Element executing a schedule over
// a fixed base delay.
type scriptedPath struct {
	r       rt.Runtime
	base    time.Duration
	sched   schedule
	deliver netem.Handler
	idx     int
}

func newScriptedPath(r rt.Runtime, base time.Duration, sched schedule) *scriptedPath {
	return &scriptedPath{r: r, base: base, sched: sched}
}

func (p *scriptedPath) SetDeliver(h netem.Handler) { p.deliver = h }

func (p *scriptedPath) Send(pkt netem.Packet) {
	i := p.idx
	p.idx++
	if p.sched.drop[i] {
		if b, ok := pkt.Data.(*buf.Buffer); ok {
			b.Release() // the path owned the datagram's reference
		}
		return
	}
	d := p.base + p.sched.delay[i]
	p.r.Schedule(d, func() { p.deliver(pkt) })
	if p.sched.dup[i] {
		dup := pkt
		if b, ok := pkt.Data.(*buf.Buffer); ok {
			dup.Data = b.Slice(0, b.Len()) // extra delivery, extra reference
		}
		p.r.Schedule(d+p.base/2, func() { p.deliver(dup) })
	}
}

// delivery is one ReadUnordered result, the unit of trace comparison.
type delivery struct {
	Offset  uint64
	Sum     uint32 // tiny content checksum: offsets alone could alias
	Len     int
	InOrder bool
}

func recordUnordered(tc *tcp.Conn, trace *[]delivery) {
	tc.OnReadable(func() {
		for {
			d, err := tc.ReadUnordered()
			if err != nil {
				return
			}
			var sum uint32
			for _, bb := range d.Data {
				sum = sum*31 + uint32(bb)
			}
			*trace = append(*trace, delivery{d.Offset, sum, len(d.Data), d.InOrder})
			d.Release()
		}
	})
}

// conformanceCfg pins every knob that could diverge between the two
// substrates — in particular the MSS, which the codec path defaults to
// DefaultMSS but the sim path defaults to an Ethernet-sized 1448.
func conformanceCfg() tcp.Config {
	cfg := tcp.Config{}.Defaults()
	cfg.Unordered = true
	cfg.UnorderedSend = true
	cfg.NoDelay = true
	cfg.MSS = DefaultMSS
	return cfg
}

// scheduleWrites scripts the sender: bulk messages on the default tag at
// fixed sim times, one high-priority insert, then a graceful close.
func scheduleWrites(s *sim.Simulator, a *tcp.Conn) {
	const msgLen = 700
	for i := 0; i < 40; i++ {
		id := i
		s.Schedule(10*time.Millisecond+time.Duration(id)*2*time.Millisecond, func() {
			msg := make([]byte, msgLen)
			for j := range msg {
				msg[j] = byte(id*31 + j)
			}
			opt := tcp.WriteOptions{Tag: tcp.TagDefault}
			if id == 39 {
				opt.Tag = 0 // the priority insert, queued last
			}
			if _, err := a.WriteMsg(msg, opt); err != nil {
				panic(fmt.Sprintf("WriteMsg %d: %v", id, err))
			}
		})
	}
	s.Schedule(300*time.Millisecond, a.Close)
}

// statsOfInterest projects the counters that must match across
// substrates. Byte counters ride along with the segment counters.
type statsOfInterest struct {
	SegsSent, SegsRetrans, SegsReceived int
	AcksSent, DupAcksReceived           int
	FastRecoveries, Timeouts            int
	DeliveredOOO                        int
}

func project(st tcp.Stats) statsOfInterest {
	return statsOfInterest{
		SegsSent: st.SegsSent, SegsRetrans: st.SegsRetrans, SegsReceived: st.SegsReceived,
		AcksSent: st.AcksSent, DupAcksReceived: st.DupAcksReceived,
		FastRecoveries: st.FastRecoveries, Timeouts: st.Timeouts,
		DeliveredOOO: st.DeliveredOOO,
	}
}

// runSimDirect runs the schedule over the segment-passing sim substrate.
func runSimDirect(seed int64, ab, ba schedule) ([]delivery, statsOfInterest, statsOfInterest) {
	s := sim.New(seed)
	cfg := conformanceCfg()
	a, b := tcp.NewPair(s, cfg, cfg, newScriptedPath(s, 5*time.Millisecond, ab), newScriptedPath(s, 5*time.Millisecond, ba))
	var trace []delivery
	recordUnordered(b, &trace)
	scheduleWrites(s, a)
	s.RunUntil(20 * time.Second)
	return trace, project(a.Stats()), project(b.Stats())
}

// runOverCodec runs the identical schedule with every segment encoded
// into a UDP datagram and decoded back — the userspace wire path on the
// simulator.
func runOverCodec(seed int64, ab, ba schedule) ([]delivery, statsOfInterest, statsOfInterest) {
	s := sim.New(seed)
	cfg := conformanceCfg()
	ua, ub := udp.New(), udp.New()
	udp.Wire(ua, ub, newScriptedPath(s, 5*time.Millisecond, ab), newScriptedPath(s, 5*time.Millisecond, ba))
	bindA := Bind(s, ua, cfg)
	bindB := Bind(s, ub, cfg)
	var trace []delivery
	recordUnordered(bindB.Conn(), &trace)
	bindB.Conn().Listen()
	bindA.Conn().Connect()
	scheduleWrites(s, bindA.Conn())
	s.RunUntil(20 * time.Second)
	return trace, project(bindA.Conn().Stats()), project(bindB.Conn().Stats())
}

// TestGoldenTraceConformance runs matched schedules through both
// substrates and requires identical delivery traces — same fragments, same
// offsets, same content, same in-order/out-of-order classification — and
// identical protocol counters on both endpoints.
func TestGoldenTraceConformance(t *testing.T) {
	cases := []struct {
		name   string
		ab, ba schedule
	}{
		{"clean", schedule{}, schedule{}},
		{"data loss", schedule{drop: map[int]bool{3: true, 9: true, 17: true, 18: true, 30: true}}, schedule{}},
		{"ack loss", schedule{}, schedule{drop: map[int]bool{2: true, 5: true, 11: true}}},
		{"reorder", schedule{delay: map[int]time.Duration{6: 25 * time.Millisecond, 14: 40 * time.Millisecond}}, schedule{}},
		{"duplication", schedule{dup: map[int]bool{4: true, 8: true, 20: true}}, schedule{}},
		{"mixed", schedule{
			drop:  map[int]bool{5: true, 16: true, 27: true},
			dup:   map[int]bool{7: true},
			delay: map[int]time.Duration{10: 30 * time.Millisecond},
		}, schedule{drop: map[int]bool{4: true}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			simTrace, simA, simB := runSimDirect(42, c.ab, c.ba)
			codTrace, codA, codB := runOverCodec(42, c.ab, c.ba)

			if len(simTrace) == 0 {
				t.Fatal("sim substrate delivered nothing — broken harness")
			}
			if len(simTrace) != len(codTrace) {
				t.Fatalf("delivery count diverged: sim %d vs codec %d", len(simTrace), len(codTrace))
			}
			for i := range simTrace {
				if simTrace[i] != codTrace[i] {
					t.Fatalf("delivery %d diverged:\n  sim   %+v\n  codec %+v", i, simTrace[i], codTrace[i])
				}
			}
			if simA != codA {
				t.Errorf("sender counters diverged:\n  sim   %+v\n  codec %+v", simA, codA)
			}
			if simB != codB {
				t.Errorf("receiver counters diverged:\n  sim   %+v\n  codec %+v", simB, codB)
			}
			// The lossy and reordered schedules must actually exercise the
			// out-of-order machinery, or the comparison proves nothing.
			if c.ab.drop != nil || c.ab.delay != nil {
				if simB.DeliveredOOO == 0 {
					t.Error("schedule produced no out-of-order deliveries")
				}
			}
		})
	}
}
