package utcp

import (
	"runtime"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"minion/internal/tcp"
	"minion/internal/wire"
)

// Chaos suite: the wire.FaultHooks seam drives the real-socket uTCP path
// through the failure weather a deployment produces — receive-side EAGAIN
// storms, kernel-truncated datagrams, and a socket that goes dark while
// the retransmission machinery is hot. Everything above the seam runs its
// production code.

// chaosPayload fills p with a byte pattern keyed to absolute stream
// offset, so any delivered byte is verifiable in isolation.
func chaosPayload(p []byte) {
	for i := range p {
		p[i] = byte(i*7 + 3)
	}
}

// waitEstablished polls the client connection into StateEstablished.
func waitEstablished(t *testing.T, cli *Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st tcp.State
		if !cli.Do(func() { st = cli.Conn().State() }) {
			t.Fatal("client loop closed during handshake")
		}
		if st == tcp.StateEstablished {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("handshake never completed")
}

// gracefulClose closes the client side, waits for the server's close
// callback, and detaches the endpoint — the teardown leakCheck expects.
func gracefulClose(t *testing.T, cli *Client, ep *Endpoint) {
	t.Helper()
	closed := make(chan struct{})
	ep.Do(func() { ep.Conn().OnClose(func(error) { close(closed) }) })
	cli.Do(func() { cli.Conn().Close() })
	ep.Do(func() { ep.Conn().Close() })
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Error("graceful close did not complete")
	}
	ep.Detach()
}

// TestReadFaultStormRecovers stalls every socket read in the process with
// an EAGAIN storm for 300ms mid-transfer — receive-side readiness lies,
// ACKs stop flowing, the sender's RTO fires into the void — then clears
// the weather and requires the transfer to finish intact with nothing
// leaked.
func TestReadFaultStormRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test skipped in -short")
	}
	leakCheck(t)
	cli, ep, _ := dialLoopback(t, tcp.Config{NoDelay: true}, tcp.Config{NoDelay: true})
	waitEstablished(t, cli)

	const total = 64 * 1024
	stormUntil := time.Now().Add(300 * time.Millisecond)
	var stormed atomic.Int64
	wire.SetFaultHooks(&wire.FaultHooks{Read: func(size int) (int, error) {
		if time.Now().Before(stormUntil) {
			stormed.Add(1)
			return 0, syscall.EAGAIN
		}
		return 0, nil
	}})
	defer wire.SetFaultHooks(nil)

	data := make([]byte, 0, total)
	done := make(chan struct{})
	ep.Do(func() {
		sc := ep.Conn()
		rbuf := make([]byte, 32*1024)
		sc.OnReadable(func() {
			for {
				n, err := sc.Read(rbuf)
				if n > 0 {
					data = append(data, rbuf[:n]...)
				}
				if err != nil || n == 0 {
					break
				}
			}
			if len(data) >= total {
				select {
				case <-done:
				default:
					close(done)
				}
			}
		})
	})

	payload := make([]byte, total)
	chaosPayload(payload)
	cli.Do(func() {
		if _, err := cli.Conn().Write(payload); err != nil {
			t.Errorf("write: %v", err)
		}
	})

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("transfer stalled: %d/%d bytes", len(data), total)
	}
	if stormed.Load() == 0 {
		t.Error("storm never hit a read — the seam is dead")
	}
	var bad int
	ep.Do(func() {
		for i := 0; i < total; i++ {
			if data[i] != byte(i*7+3) {
				bad++
			}
		}
	})
	if bad != 0 {
		t.Fatalf("%d corrupt bytes after storm recovery", bad)
	}
	wire.SetFaultHooks(nil)
	gracefulClose(t, cli, ep)
}

// TestTruncatedDatagramsRecovered injects kernel-style datagram
// truncation on the receive path: some reads are cut mid-header (the
// codec must reject them — Malformed counts, the ARQ retransmits) and
// some mid-payload (a valid shorter segment — the ARQ recovers the
// severed tail). The transfer must complete byte-perfect either way.
func TestTruncatedDatagramsRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("truncation test skipped in -short")
	}
	leakCheck(t)
	cli, ep, _ := dialLoopback(t,
		tcp.Config{NoDelay: true},
		tcp.Config{NoDelay: true, Unordered: true},
	)
	waitEstablished(t, cli)

	// The weather is time-bounded: a periodic truncation pattern left on
	// forever can phase-lock with RTO-paced recovery (every retransmission
	// landing on a truncating read index), so the chaos window closes
	// after a second and the transfer must then finish on a clean wire.
	truncUntil := time.Now().Add(time.Second)
	var reads atomic.Int64
	wire.SetFaultHooks(&wire.FaultHooks{Read: func(size int) (int, error) {
		if !time.Now().Before(truncUntil) {
			return 0, nil
		}
		switch n := reads.Add(1); {
		case n%11 == 0:
			return 10, nil // mid-header: Decode rejects, loss recovery pays
		case n%4 == 0:
			return 300, nil // mid-payload: a shorter but valid segment
		}
		return 0, nil
	}})
	defer wire.SetFaultHooks(nil)

	const total = 96 * 1024
	covered := make([]bool, total)
	coveredBytes := 0
	bad := 0
	done := make(chan struct{})
	ep.Do(func() {
		sc := ep.Conn()
		sc.OnReadable(func() {
			for {
				d, err := sc.ReadUnordered()
				if err != nil {
					break
				}
				for i, bb := range d.Data {
					off := int(d.Offset) + i
					if off >= total || covered[off] {
						continue
					}
					covered[off] = true
					coveredBytes++
					if bb != byte(off*7+3) {
						bad++
					}
				}
				d.Release()
			}
			if coveredBytes >= total {
				select {
				case <-done:
				default:
					close(done)
				}
			}
		})
	})

	payload := make([]byte, total)
	chaosPayload(payload)
	cli.Do(func() {
		if _, err := cli.Conn().Write(payload); err != nil {
			t.Errorf("write: %v", err)
		}
	})

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		var got int
		ep.Do(func() { got = coveredBytes })
		t.Fatalf("transfer stalled: %d/%d bytes covered", got, total)
	}
	var badBytes int
	var malformed int64
	ep.Do(func() {
		badBytes = bad
		malformed = ep.Binding().Stats().Malformed
	})
	var cliMalformed int64
	cli.Do(func() { cliMalformed = cli.Binding().Stats().Malformed })
	if badBytes != 0 {
		t.Fatalf("%d corrupt bytes after truncation recovery", badBytes)
	}
	if malformed+cliMalformed == 0 {
		t.Error("no malformed packets counted — truncation never bit a header")
	}
	wire.SetFaultHooks(nil)
	gracefulClose(t, cli, ep)
}

// TestSocketDeathMidRetransmit kills the network under a hot
// retransmission storm: bulk data in flight, every outgoing datagram
// dropped, then both sides abort. OnClose must fire exactly once per
// side — across the abort, a redundant Close, and the listener's own
// teardown — and every goroutine must return once the sockets release.
//
// No buffer-ledger assertion here: aborting with queued send data
// legitimately strands the send queue's references for the GC instead of
// returning them to the pool.
func TestSocketDeathMidRetransmit(t *testing.T) {
	if testing.Short() {
		t.Skip("abort test skipped in -short")
	}
	goroBefore := runtime.NumGoroutine()
	cli, ep, ln := dialLoopback(t, tcp.Config{NoDelay: true}, tcp.Config{NoDelay: true})
	waitEstablished(t, cli)

	wire.SetFaultHooks(&wire.FaultHooks{Write: func(int) (int, error) {
		return 0, syscall.ENETUNREACH
	}})
	defer wire.SetFaultHooks(nil)

	var cliFires, epFires atomic.Int64
	cliClosed := make(chan struct{}, 4)
	epClosed := make(chan struct{}, 4)
	cli.Do(func() {
		cli.Conn().OnClose(func(error) { cliFires.Add(1); cliClosed <- struct{}{} })
	})
	ep.Do(func() {
		ep.Conn().OnClose(func(error) { epFires.Add(1); epClosed <- struct{}{} })
	})

	// Fill the send buffer into the dead network, then wait for the
	// retransmission machinery to engage.
	bulk := make([]byte, 32*1024)
	chaosPayload(bulk)
	cli.Do(func() {
		for {
			if _, err := cli.Conn().Write(bulk); err != nil {
				break // ErrWouldBlock: buffer full, storm guaranteed
			}
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		var retrans int
		cli.Do(func() { retrans = cli.Conn().Stats().SegsRetrans })
		if retrans > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retransmission never started under total loss")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Death mid-storm: abort both sides, then hit each with a redundant
	// Close and Abort — the callback must not re-fire.
	cli.Do(func() { cli.Conn().Abort() })
	ep.Do(func() { ep.Conn().Abort() })
	for _, ch := range []chan struct{}{cliClosed, epClosed} {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatal("OnClose never fired after abort")
		}
	}
	cli.Do(func() { cli.Conn().Close(); cli.Conn().Abort() })
	ep.Do(func() { ep.Conn().Close(); ep.Conn().Abort() })
	time.Sleep(50 * time.Millisecond)
	if n := cliFires.Load(); n != 1 {
		t.Errorf("client OnClose fired %d times, want 1", n)
	}
	if n := epFires.Load(); n != 1 {
		t.Errorf("server OnClose fired %d times, want 1", n)
	}

	// Release the sockets; every reader and loop goroutine must return.
	wire.SetFaultHooks(nil)
	cli.Close()
	ep.Detach()
	ln.Close()
	waitGoroutines(t, goroBefore)
}
