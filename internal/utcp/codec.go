package utcp

import (
	"encoding/binary"
	"errors"
	"math"

	"minion/internal/buf"
	"minion/internal/tcp"
	"minion/internal/udp"
)

// Wire layout of one uTCP-over-UDP packet (all integers big-endian; see
// docs/WIREFORMAT.md "uTCP over UDP"):
//
//	[0]     magic      0xD5
//	[1]     version    1
//	[2]     flags      tcp.Flags bits (SYN|ACK|FIN|RST); others reject
//	[3]     nsack      SACK block count, 0..3
//	[4:8]   window     advertised receive window, bytes
//	[8:16]  seq        sequence number
//	[16:24] ack        acknowledgment number
//	[24:]   nsack × {start uint64, end uint64}, then payload
//
// Sequence fields are 64-bit like the internal machinery: the UDP
// encapsulation owns its own header, so there is no 32-bit TCP field to
// stay compatible with, and wraparound arithmetic disappears.
const (
	// Magic is the first byte of every uTCP-over-UDP packet.
	Magic = 0xD5
	// Version is the only packet format this codec speaks.
	Version = 1
	// HeaderLen is the fixed header size before SACK blocks and payload.
	HeaderLen = 24
	// sackBlockLen is the encoded size of one SACK block.
	sackBlockLen = 16
	// DefaultMSS is the default segment payload bound for UDP carriage:
	// 1400 payload + 24 uTCP header + up to 48 bytes of SACK blocks +
	// 28 bytes UDP/IP fits a 1500-byte MTU without fragmentation.
	DefaultMSS = 1400
)

// flagsMask is every flag bit the codec accepts; unknown bits reject the
// packet rather than silently degrading into a state machine that never
// anticipated them.
const flagsMask = tcp.FlagSYN | tcp.FlagACK | tcp.FlagFIN | tcp.FlagRST

// Decode errors, in rough order of suspicion.
var (
	ErrTruncated = errors.New("utcp: truncated packet")
	ErrMagic     = errors.New("utcp: bad magic")
	ErrVersion   = errors.New("utcp: unknown version")
	ErrFlags     = errors.New("utcp: unknown flag bits")
	ErrSACK      = errors.New("utcp: malformed SACK blocks")
)

// Encode serializes seg into a pooled buffer ready to travel as one UDP
// datagram — the send path's single payload copy. The caller owns the
// returned buffer (Bind hands it straight to the shim, which takes it).
func Encode(seg *tcp.Segment) *buf.Buffer {
	n := HeaderLen + len(seg.SACK)*sackBlockLen + len(seg.Payload)
	b := buf.Get(n)
	p := b.Bytes()
	p[0] = Magic
	p[1] = Version
	p[2] = byte(seg.Flags)
	p[3] = byte(len(seg.SACK))
	w := seg.Window
	if w < 0 {
		w = 0
	} else if w > math.MaxUint32 {
		w = math.MaxUint32
	}
	binary.BigEndian.PutUint32(p[4:8], uint32(w))
	binary.BigEndian.PutUint64(p[8:16], seg.Seq)
	binary.BigEndian.PutUint64(p[16:24], seg.Ack)
	off := HeaderLen
	for _, sb := range seg.SACK {
		binary.BigEndian.PutUint64(p[off:], sb.Start)
		binary.BigEndian.PutUint64(p[off+8:], sb.End)
		off += sackBlockLen
	}
	copy(p[off:], seg.Payload)
	return b
}

// Decode parses pkt into seg, validating everything an adversarial
// network could bend: length, magic, version, flag bits, SACK count and
// block sanity. SACK blocks land in the caller's scratch array (no
// allocation on the receive path) and seg.Payload aliases pkt — the
// caller decides whether to back it with a refcounted buffer slice
// (Bind does) or copy. seg.Buf is left untouched.
func Decode(pkt []byte, seg *tcp.Segment, sack *[tcp.MaxSACKBlocks]tcp.SACKBlock) error {
	if len(pkt) < HeaderLen {
		return ErrTruncated
	}
	if pkt[0] != Magic {
		return ErrMagic
	}
	if pkt[1] != Version {
		return ErrVersion
	}
	fl := tcp.Flags(pkt[2])
	if fl&^flagsMask != 0 {
		return ErrFlags
	}
	nsack := int(pkt[3])
	if nsack > tcp.MaxSACKBlocks {
		return ErrSACK
	}
	off := HeaderLen + nsack*sackBlockLen
	if len(pkt) < off {
		return ErrTruncated
	}
	seg.Flags = fl
	seg.Window = int(binary.BigEndian.Uint32(pkt[4:8]))
	seg.Seq = binary.BigEndian.Uint64(pkt[8:16])
	seg.Ack = binary.BigEndian.Uint64(pkt[16:24])
	for i := 0; i < nsack; i++ {
		o := HeaderLen + i*sackBlockLen
		blk := tcp.SACKBlock{
			Start: binary.BigEndian.Uint64(pkt[o : o+8]),
			End:   binary.BigEndian.Uint64(pkt[o+8 : o+16]),
		}
		if blk.Start >= blk.End {
			return ErrSACK
		}
		sack[i] = blk
	}
	seg.SACK = sack[:nsack]
	seg.Payload = pkt[off:]
	return nil
}

// MaxPacket is the largest packet Encode can produce for a given MSS.
func MaxPacket(mss int) int {
	return HeaderLen + tcp.MaxSACKBlocks*sackBlockLen + mss
}

// compile-time guarantee that a full-MSS packet fits a UDP datagram.
const _ uint = udp.MaxDatagram - HeaderLen - tcp.MaxSACKBlocks*sackBlockLen - DefaultMSS
