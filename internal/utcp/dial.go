package utcp

import (
	"net"

	"minion/internal/rt"
	"minion/internal/tcp"
	"minion/internal/wire"
)

// Client is one dialed uTCP-over-UDP connection: a connected wire.UDPConn
// socket with a Binding hosted on its event loop. The SYN is in flight
// when Dial returns; writes queue until the handshake completes, so
// callers need not wait for Established before layering framing on top.
type Client struct {
	uc *wire.UDPConn
	b  *Binding
}

// Dial opens a connected UDP socket to addr and starts a uTCP client
// handshake over it.
func Dial(network, addr string, cfg tcp.Config, ucfg wire.UDPConfig) (*Client, error) {
	uc, err := wire.DialUDPConfig(network, addr, ucfg)
	if err != nil {
		return nil, err
	}
	c := &Client{uc: uc}
	if !uc.Do(func() {
		c.b = Bind(uc.Loop(), uc.Shim(), cfg)
		c.b.Conn().Connect()
	}) {
		uc.Close()
		return nil, net.ErrClosed
	}
	return c, nil
}

// Conn returns the connection (touch it only via Do/Post).
func (c *Client) Conn() *tcp.Conn { return c.b.Conn() }

// Binding returns the codec binding (loop-confined, like the Conn).
func (c *Client) Binding() *Binding { return c.b }

// Loop returns the event loop hosting the connection.
func (c *Client) Loop() *rt.Loop { return c.uc.Loop() }

// Do runs fn on the connection's event loop (false once closed).
func (c *Client) Do(fn func()) bool { return c.uc.Do(fn) }

// Post queues fn on the connection's event loop without waiting.
func (c *Client) Post(fn func()) bool { return c.uc.Post(fn) }

// LocalAddr returns the socket's local address.
func (c *Client) LocalAddr() net.Addr { return c.uc.LocalAddr() }

// Close tears the socket and loop down immediately. Graceful teardown is
// the caller's job: Conn().Close() on the loop, then Close here once
// OnClose fires (or a linger bound expires).
func (c *Client) Close() { c.uc.Close() }
