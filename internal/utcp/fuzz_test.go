package utcp

import (
	"encoding/binary"
	"testing"
	"time"

	"minion/internal/buf"
	"minion/internal/sim"
	"minion/internal/tcp"
	"minion/internal/udp"
)

// mkPacket assembles a syntactically valid wire packet for seeding.
func mkPacket(flags byte, seq, ack uint64, window uint32, sack [][2]uint64, payload []byte) []byte {
	p := make([]byte, HeaderLen, HeaderLen+len(sack)*sackBlockLen+len(payload))
	p[0], p[1], p[2], p[3] = Magic, Version, flags, byte(len(sack))
	binary.BigEndian.PutUint32(p[4:], window)
	binary.BigEndian.PutUint64(p[8:], seq)
	binary.BigEndian.PutUint64(p[16:], ack)
	for _, blk := range sack {
		var b [sackBlockLen]byte
		binary.BigEndian.PutUint64(b[0:], blk[0])
		binary.BigEndian.PutUint64(b[8:], blk[1])
		p = append(p, b[:]...)
	}
	return append(p, payload...)
}

// chunk frames pkt into the fuzz input's [len16][bytes] packet stream.
func chunk(pkts ...[]byte) []byte {
	var out []byte
	for _, p := range pkts {
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(p)))
		out = append(out, l[:]...)
		out = append(out, p...)
	}
	return out
}

// FuzzReceiver throws adversarial packet streams at a listening uTCP
// receiver: arbitrary bytes, truncations, bogus SACK geometry, spoofed
// sequence space. Invariants: no panic, the in-order delivery path never
// regresses or tears a byte, the codec's accounting covers every packet,
// and the pooled-buffer ledger balances once the connection is torn down.
func FuzzReceiver(f *testing.F) {
	const syn = byte(tcp.FlagSYN)
	const ack = byte(tcp.FlagACK)
	f.Add([]byte{})
	f.Add(chunk(mkPacket(syn, 100, 0, 65535, nil, nil)))
	f.Add(chunk(
		mkPacket(syn, 100, 0, 65535, nil, nil),
		mkPacket(ack, 101, 1, 65535, nil, []byte("hello unordered world")),
	))
	f.Add(chunk(
		mkPacket(syn, 0, 0, 0, nil, nil),
		mkPacket(ack, 1, 1, 4096, [][2]uint64{{64, 128}, {256, 300}}, []byte("sacked")),
		mkPacket(ack|byte(tcp.FlagFIN), 30, 1, 4096, nil, nil),
	))
	f.Add(chunk(
		[]byte{Magic, Version, 0xff, 0},                          // unknown flags
		[]byte{Magic, 9, ack, 0},                                 // bad version
		[]byte("short"),                                          // truncated
		mkPacket(ack, 5, 5, 1, [][2]uint64{{10, 10}}, nil),       // empty SACK block
		mkPacket(ack, 1<<63, 1<<62, 1<<31, nil, []byte("wrap?")), // huge seq space
		mkPacket(ack, 3, 3, 0, [][2]uint64{{900, 4}}, []byte{1}), // inverted SACK
	))
	f.Add(chunk(mkPacket(byte(tcp.FlagRST), 7, 7, 0, nil, nil)))

	f.Fuzz(func(t *testing.T, data []byte) {
		before := buf.Stats()
		s := sim.New(1)
		shim := udp.New()
		shim.SetOutput(func(b *buf.Buffer, _ int) { b.Release() })
		cfg := tcp.Config{}.Defaults()
		cfg.Unordered = true
		cfg.MSS = DefaultMSS
		b := Bind(s, shim, cfg)
		tc := b.Conn()
		tc.Listen()

		// Drain every delivery, checking the in-order path's contract: the
		// cumulative point only advances, contiguously.
		var nextInOrder uint64
		haveInOrder := false
		tc.OnReadable(func() {
			for {
				d, err := tc.ReadUnordered()
				if err != nil {
					return
				}
				if d.InOrder {
					if haveInOrder && d.Offset != nextInOrder {
						t.Errorf("in-order path tore: delivery at %d, cumulative point %d", d.Offset, nextInOrder)
					}
					nextInOrder = d.Offset + uint64(len(d.Data))
					haveInOrder = true
				}
				d.Release()
			}
		})

		fed := int64(0)
		for off := 0; off+2 <= len(data); {
			n := int(binary.BigEndian.Uint16(data[off:])) % 2048
			off += 2
			if off+n > len(data) {
				n = len(data) - off
			}
			b.Input(buf.From(data[off : off+n]))
			off += n
			fed++
			s.RunFor(5 * time.Millisecond)
		}

		st := b.Stats()
		if st.PacketsIn+st.Malformed != fed {
			t.Errorf("codec accounting: %d in + %d malformed != %d fed", st.PacketsIn, st.Malformed, fed)
		}

		tc.Abort()
		s.RunFor(time.Second)
		after := buf.Stats()
		g := after.Gets - before.Gets
		p := after.Puts - before.Puts
		u := after.Unpooled - before.Unpooled
		if p < g-u {
			t.Errorf("buffer ledger unbalanced: gets=%d puts=%d unpooled=%d", g, p, u)
		}
	})
}

// FuzzDecode checks the codec alone: Decode never panics, and any packet
// it accepts survives a re-encode/re-decode round trip with identical
// header fields and payload.
func FuzzDecode(f *testing.F) {
	f.Add(mkPacket(byte(tcp.FlagSYN), 100, 0, 65535, nil, nil))
	f.Add(mkPacket(byte(tcp.FlagACK), 1, 1, 4096, [][2]uint64{{64, 128}}, []byte("payload")))
	f.Add([]byte{Magic, Version})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var seg tcp.Segment
		var sack [tcp.MaxSACKBlocks]tcp.SACKBlock
		if err := Decode(data, &seg, &sack); err != nil {
			return
		}
		enc := Encode(&seg)
		defer enc.Release()
		var seg2 tcp.Segment
		var sack2 [tcp.MaxSACKBlocks]tcp.SACKBlock
		if err := Decode(enc.Bytes(), &seg2, &sack2); err != nil {
			t.Fatalf("re-decode of encoded packet failed: %v", err)
		}
		if seg2.Seq != seg.Seq || seg2.Ack != seg.Ack || seg2.Flags != seg.Flags ||
			seg2.Window != seg.Window || len(seg2.SACK) != len(seg.SACK) ||
			string(seg2.Payload) != string(seg.Payload) {
			t.Fatalf("round trip diverged:\n  first  %+v\n  second %+v", seg, seg2)
		}
		for i := range seg.SACK {
			if seg.SACK[i] != seg2.SACK[i] {
				t.Fatalf("SACK block %d diverged: %+v vs %+v", i, seg.SACK[i], seg2.SACK[i])
			}
		}
	})
}
