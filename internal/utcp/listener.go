package utcp

import (
	"net"
	"net/netip"
	"sync"

	"minion/internal/buf"
	"minion/internal/rt"
	"minion/internal/tcp"
	"minion/internal/udp"
	"minion/internal/wire"
)

// ListenerConfig parameterizes a uTCP listener. The zero value is usable.
type ListenerConfig struct {
	// Config is the per-connection uTCP configuration (MSS zero defaults
	// to DefaultMSS, as in Bind).
	Config tcp.Config
	// Backlog bounds endpoints accepted by the demux but not yet taken by
	// Accept (default 64). A SYN arriving with the backlog full is
	// dropped — standard SYN-queue overflow behaviour; the client
	// retransmits.
	Backlog int
	// UDP tunes the shared socket.
	UDP wire.UDPConfig
}

// Listener demuxes one unconnected UDP socket into per-peer uTCP
// endpoints by source address. Every endpoint shares the socket's event
// loop — the single-loop shape is right for tests, experiments, and
// modest fan-in; a per-core LoopGroup accept sharder is future work
// (ROADMAP). State for a peer is created only by a well-formed SYN;
// anything else from an unknown source is dropped without allocation,
// so stray datagrams cannot grow the table.
type Listener struct {
	pc  *wire.UDPPacketConn
	cfg ListenerConfig

	// Loop-confined demux state.
	eps    map[netip.AddrPort]*Endpoint
	closed bool

	backlog   chan *Endpoint
	done      chan struct{}
	closeOnce sync.Once
}

// Endpoint is one accepted peer's connection on the listener's loop.
type Endpoint struct {
	l    *Listener
	peer netip.AddrPort
	b    *Binding
	shim *udp.Conn
}

// Listen opens the shared socket and starts demuxing.
func Listen(network, addr string, cfg ListenerConfig) (*Listener, error) {
	if cfg.Backlog == 0 {
		cfg.Backlog = 64
	}
	pc, err := wire.ListenUDPPacket(network, addr, cfg.UDP)
	if err != nil {
		return nil, err
	}
	l := &Listener{
		pc:      pc,
		cfg:     cfg,
		eps:     make(map[netip.AddrPort]*Endpoint),
		backlog: make(chan *Endpoint, cfg.Backlog),
		done:    make(chan struct{}),
	}
	pc.OnPacket(l.input)
	return l, nil
}

// Addr returns the listening socket's address.
func (l *Listener) Addr() net.Addr { return l.pc.LocalAddr() }

// Loop returns the event loop every endpoint runs on.
func (l *Listener) Loop() *rt.Loop { return l.pc.Loop() }

// Accept blocks for the next incoming connection. The endpoint is
// surfaced on SYN arrival — its handshake may still be completing; writes
// queue until it does.
func (l *Listener) Accept() (*Endpoint, error) {
	select {
	case ep := <-l.backlog:
		return ep, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close aborts every live endpoint (RST out the shared socket), stops the
// demux, and releases the socket and loop. Accept unblocks with
// net.ErrClosed.
func (l *Listener) Close() {
	l.closeOnce.Do(func() {
		close(l.done)
		l.pc.Do(func() {
			l.closed = true
			for _, ep := range l.eps {
				ep.b.Conn().Abort()
			}
			l.eps = map[netip.AddrPort]*Endpoint{}
		})
		l.pc.Close()
	})
}

// input routes one datagram. Runs on the loop; owns b.
func (l *Listener) input(b *buf.Buffer, from netip.AddrPort) {
	if l.closed {
		b.Release()
		return
	}
	ep := l.eps[from]
	if ep == nil {
		// Only a clean initial SYN creates per-peer state.
		p := b.Bytes()
		if len(p) < HeaderLen || p[0] != Magic || p[1] != Version ||
			tcp.Flags(p[2]) != tcp.FlagSYN {
			b.Release()
			return
		}
		if len(l.backlog) == cap(l.backlog) {
			// SYN-queue overflow: drop; the client's handshake RTO retries.
			b.Release()
			return
		}
		ep = l.newEndpoint(from)
		l.eps[from] = ep
		l.backlog <- ep // cannot block: the loop is the only producer
	}
	ep.shim.InputBuf(b)
}

// newEndpoint builds a per-peer shim whose output goes back out the
// shared socket to that peer, binds a listening uTCP connection over it,
// and hands it the arriving SYN's processing. Runs on the loop.
func (l *Listener) newEndpoint(from netip.AddrPort) *Endpoint {
	shim := udp.New()
	shim.SetOutput(func(b *buf.Buffer, wireSize int) {
		l.pc.SendTo(b, from)
	})
	ep := &Endpoint{l: l, peer: from, shim: shim}
	ep.b = Bind(l.pc.Loop(), shim, l.cfg.Config)
	ep.b.Conn().Listen()
	return ep
}

// Conn returns the endpoint's connection (loop-confined).
func (e *Endpoint) Conn() *tcp.Conn { return e.b.Conn() }

// Binding returns the endpoint's codec binding (loop-confined).
func (e *Endpoint) Binding() *Binding { return e.b }

// RemoteAddr returns the peer's address.
func (e *Endpoint) RemoteAddr() netip.AddrPort { return e.peer }

// Loop returns the event loop the endpoint runs on.
func (e *Endpoint) Loop() *rt.Loop { return e.l.pc.Loop() }

// Do runs fn on the endpoint's loop (false once the listener closed).
func (e *Endpoint) Do(fn func()) bool { return e.l.pc.Do(fn) }

// Post queues fn on the endpoint's loop without waiting.
func (e *Endpoint) Post(fn func()) bool { return e.l.pc.Post(fn) }

// Detach removes the endpoint from the demux table — call once its
// connection has fully closed, so a reconnecting peer (same source
// address) gets a fresh endpoint instead of RST-shaped confusion.
func (e *Endpoint) Detach() {
	e.l.pc.Post(func() {
		if e.l.eps[e.peer] == e {
			delete(e.l.eps, e.peer)
		}
	})
}
