package utcp

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"syscall"
	"testing"
	"time"

	"minion/internal/tcp"
	"minion/internal/wire"
)

// lossHook installs a seeded Bernoulli datagram-drop fault on the wire
// write path (process-wide, both directions). The rng is mutex-guarded:
// hooks run on every loop goroutine issuing sends.
func lossHook(seed int64, p float64) *wire.FaultHooks {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return &wire.FaultHooks{
		Write: func(size int) (int, error) {
			mu.Lock()
			drop := rng.Float64() < p
			mu.Unlock()
			if drop {
				return 0, syscall.ECONNREFUSED
			}
			return 0, nil
		},
	}
}

// mkMsg builds a position-independent message: 4-byte big-endian id, then
// a deterministic byte pattern keyed by the id. Messages carry their own
// identity because priority insertion reassigns stream positions — the
// receiver learns which message occupies a slot from the payload itself.
func mkMsg(id, msgLen int) []byte {
	msg := make([]byte, msgLen)
	binary.BigEndian.PutUint32(msg, uint32(id))
	for j := 4; j < msgLen; j++ {
		msg[j] = byte(id*31 + j ^ (j >> 5))
	}
	return msg
}

// TestUnorderedDeliveryUnderLoss is the PR's acceptance criterion on real
// sockets: a loopback uTCP connection under ~8% injected datagram loss
// must (a) deliver segments out of order — DeliveredOOO > 0 on the
// receiver, observed as InOrder=false deliveries ahead of the cumulative
// point — and (b) honor send priorities: a high-priority message queued
// behind ~200 KB of default-priority backlog is inserted ahead of the
// untransmitted part of it, landing at an early position in the
// transmitted stream (the fig-10 effect carried over a real network).
func TestUnorderedDeliveryUnderLoss(t *testing.T) {
	leakCheck(t)

	const (
		msgLen = 1000
		bulkN  = 200 // default-priority messages, ids 0..bulkN-1
		nMsgs  = bulkN + 1
		total  = nMsgs * msgLen
		hiID   = bulkN // the high-priority message, queued last
		dropP  = 0.08
		seed   = 42
	)

	cli, ep, _ := dialLoopback(t,
		tcp.Config{UnorderedSend: true, NoDelay: true},
		tcp.Config{Unordered: true},
	)

	// Receiver state, loop-confined: the reassembled stream, per-byte
	// coverage, and the first-coverage order of each 1000-byte slot.
	data := make([]byte, total)
	covered := make([]bool, total)
	coveredBytes := 0
	slotArrival := make([]int, nMsgs)
	for i := range slotArrival {
		slotArrival[i] = -1
	}
	arrivals := 0
	oooSeen := 0
	stray := 0
	done := make(chan struct{})
	ep.Do(func() {
		sc := ep.Conn()
		sc.OnReadable(func() {
			for {
				d, err := sc.ReadUnordered()
				if err != nil {
					break
				}
				if !d.InOrder {
					oooSeen++
				}
				for i, bb := range d.Data {
					off := int(d.Offset) + i
					if off >= total {
						stray++
						continue
					}
					if !covered[off] {
						covered[off] = true
						coveredBytes++
						data[off] = bb
						if slot := off / msgLen; slotArrival[slot] < 0 {
							slotArrival[slot] = arrivals
							arrivals++
						}
					}
				}
				d.Release()
			}
			if coveredBytes >= total {
				select {
				case <-done:
				default:
					close(done)
				}
			}
		})
	})

	wire.SetFaultHooks(lossHook(seed, dropP))
	defer wire.SetFaultHooks(nil)

	// Sender: queue the whole bulk backlog and then one high-priority
	// message inside a single serial-executor stretch — no ACK can be
	// processed mid-loop, so when the high-priority write is inserted the
	// congestion window has transmitted only the first few messages and
	// the insertion point is deterministically near the stream's front.
	cli.Do(func() {
		cc := cli.Conn()
		for m := 0; m < nMsgs; m++ {
			id, opt := m, tcp.WriteOptions{Tag: tcp.TagDefault}
			if m == bulkN {
				id, opt = hiID, tcp.WriteOptions{Tag: 0}
			}
			if _, err := cc.WriteMsg(mkMsg(id, msgLen), opt); err != nil {
				t.Errorf("WriteMsg %d: %v", m, err)
				return
			}
		}
	})

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("timeout: %d/%d bytes covered", coveredBytes, total)
	}
	wire.SetFaultHooks(nil)

	// Verify content: every slot holds a complete, uncorrupted message,
	// and the ids form a permutation of 0..bulkN.
	var hiSlot int
	var badBytes, raced int
	seen := make([]bool, nMsgs)
	ep.Do(func() {
		hiSlot = -1
		for slot := 0; slot < nMsgs; slot++ {
			msg := data[slot*msgLen : (slot+1)*msgLen]
			id := int(binary.BigEndian.Uint32(msg))
			if id >= nMsgs || seen[id] {
				raced++
				continue
			}
			seen[id] = true
			if id == hiID {
				hiSlot = slot
			}
			want := mkMsg(id, msgLen)
			for j := 4; j < msgLen; j++ {
				if msg[j] != want[j] {
					badBytes++
				}
			}
		}
	})
	if raced != 0 || badBytes != 0 || stray != 0 {
		t.Fatalf("delivery corrupt: %d bad ids, %d bad bytes, %d stray bytes", raced, badBytes, stray)
	}

	var st tcp.Stats
	var ooo int
	ep.Do(func() { st = ep.Conn().Stats(); ooo = oooSeen })
	if st.DeliveredOOO == 0 || ooo == 0 {
		t.Fatalf("no out-of-order deliveries under %.0f%% loss (stats=%d observed=%d)",
			dropP*100, st.DeliveredOOO, ooo)
	}

	// Priority: the high-priority message was the last of 201 queued
	// writes, yet must occupy one of the first stream slots — only the
	// messages already transmitted when it was inserted (the initial
	// congestion window, plus generous slack for ACKs racing the enqueue
	// loop's own flushes) may precede it.
	if hiSlot < 0 {
		t.Fatal("high-priority message never found in the stream")
	}
	if hiSlot > bulkN/4 {
		t.Errorf("priority not honored: high-priority message landed at stream slot %d of %d", hiSlot, nMsgs)
	}

	// Graceful close both ways so leakCheck sees a drained world.
	closed := make(chan struct{})
	ep.Do(func() { ep.Conn().OnClose(func(error) { close(closed) }) })
	cli.Do(func() { cli.Conn().Close() })
	ep.Do(func() { ep.Conn().Close() })
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Error("graceful close did not complete")
	}
	ep.Detach()
}
