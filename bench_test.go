// Benchmarks regenerating the paper's evaluation: one bench per table and
// figure (run the experiment at Quick scale and report its wall cost), plus
// micro-benchmarks of the hot protocol paths. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment outputs themselves are printed by cmd/minionbench (or the
// corresponding go test -run TestExperiment... in internal/experiments).
package minion

import (
	"testing"
	"time"

	"minion/internal/experiments"
	"minion/internal/netem"
	"minion/internal/sim"
	"minion/internal/tcp"
)

func benchExperiment(b *testing.B, run func(experiments.Scale) experiments.Result) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := run(experiments.Quick)
		if r.Output == "" {
			b.Fatal("experiment produced no output")
		}
	}
}

// BenchmarkFig5Throughput regenerates Figure 5 (uTCP vs TCP throughput by
// message size).
func BenchmarkFig5Throughput(b *testing.B) { benchExperiment(b, experiments.Fig5) }

// BenchmarkRawUTCPCPU regenerates the §8.1 raw CPU comparison.
func BenchmarkRawUTCPCPU(b *testing.B) { benchExperiment(b, experiments.RawCPU) }

// BenchmarkFig6aCOBSCPU regenerates Figure 6(a) (COBS/uCOBS CPU cost).
func BenchmarkFig6aCOBSCPU(b *testing.B) { benchExperiment(b, experiments.Fig6a) }

// BenchmarkFig6bUTLSCPU regenerates Figure 6(b) (TLS/uTLS CPU cost).
func BenchmarkFig6bUTLSCPU(b *testing.B) { benchExperiment(b, experiments.Fig6b) }

// BenchmarkFig7VoIPLatency regenerates Figure 7 (VoIP latency CDF).
func BenchmarkFig7VoIPLatency(b *testing.B) { benchExperiment(b, experiments.Fig7) }

// BenchmarkFig8BurstLoss regenerates Figure 8 (burst-loss CDF).
func BenchmarkFig8BurstLoss(b *testing.B) { benchExperiment(b, experiments.Fig8) }

// BenchmarkFig9PESQ regenerates Figure 9 (moving quality score).
func BenchmarkFig9PESQ(b *testing.B) { benchExperiment(b, experiments.Fig9) }

// BenchmarkFig10Priority regenerates Figure 10 (send-side prioritization).
func BenchmarkFig10Priority(b *testing.B) { benchExperiment(b, experiments.Fig10) }

// BenchmarkFig11VPN regenerates Figure 11 (tunnel download vs uploads).
func BenchmarkFig11VPN(b *testing.B) { benchExperiment(b, experiments.Fig11) }

// BenchmarkFig12VPNVariants regenerates Figure 12 (modification ablation).
func BenchmarkFig12VPNVariants(b *testing.B) { benchExperiment(b, experiments.Fig12) }

// BenchmarkFig13Web regenerates Figure 13 (web page loads).
func BenchmarkFig13Web(b *testing.B) { benchExperiment(b, experiments.Fig13) }

// BenchmarkTable1Complexity regenerates Table 1 (code size).
func BenchmarkTable1Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().Output == "" {
			b.Fatal("empty table")
		}
	}
}

// --- micro-benchmarks of the hot protocol paths -------------------------

// BenchmarkMinionDatagramUCOBS measures end-to-end datagram cost over
// uCOBS/uTCP on an ideal link (protocol CPU only; network time is virtual).
func BenchmarkMinionDatagramUCOBS(b *testing.B) {
	benchDatagram(b, ProtoUCOBSuTCP)
}

// BenchmarkMinionDatagramUTLS is the encrypted equivalent.
func BenchmarkMinionDatagramUTLS(b *testing.B) {
	benchDatagram(b, ProtoUTLSuTCP)
}

func benchDatagram(b *testing.B, proto Protocol) {
	s := sim.New(1)
	link := func() *netem.Link {
		return netem.NewLink(s, netem.LinkConfig{Rate: 1_000_000_000, Delay: time.Millisecond, QueueBytes: 1 << 30})
	}
	pair := NewPair(s, proto, TCPConfig{NoDelay: true, SendBufBytes: 1 << 24, RecvBufBytes: 1 << 24}, link(), link())
	n := 0
	pair.B.OnMessage(func([]byte) { n++ })
	s.RunUntil(time.Second)
	msg := make([]byte, 1000)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pair.A.Send(msg, Options{}) != nil {
			s.RunFor(10 * time.Millisecond)
		}
		if i%512 == 511 {
			s.RunFor(50 * time.Millisecond)
		}
	}
	s.RunFor(5 * time.Second)
	b.StopTimer()
	if n == 0 {
		b.Fatal("no messages delivered")
	}
}

// BenchmarkTCPBulkTransfer measures the raw substrate: 1 MiB over a fast
// simulated link, protocol CPU only.
func BenchmarkTCPBulkTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(int64(i))
		fwd := netem.NewLink(s, netem.LinkConfig{Rate: 100_000_000, Delay: 5 * time.Millisecond, QueueBytes: 1 << 30})
		back := netem.NewLink(s, netem.LinkConfig{Rate: 100_000_000, Delay: 5 * time.Millisecond, QueueBytes: 1 << 30})
		snd, rcv := tcp.NewPair(s, tcp.Config{NoDelay: true}, tcp.Config{}, fwd, back)
		var got int64
		buf := make([]byte, 64*1024)
		rcv.OnReadable(func() {
			for {
				k, _ := rcv.Read(buf)
				if k == 0 {
					return
				}
				got += int64(k)
			}
		})
		const total = 1 << 20
		sent := 0
		chunk := make([]byte, 32*1024)
		var pump func()
		pump = func() {
			for sent < total {
				n, err := snd.Write(chunk)
				sent += n
				if err != nil {
					return
				}
			}
		}
		snd.OnWritable(pump)
		s.Schedule(0, pump)
		s.RunUntil(time.Minute)
		if got < total {
			b.Fatalf("incomplete transfer: %d", got)
		}
		b.SetBytes(total)
	}
}
