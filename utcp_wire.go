package minion

import (
	"errors"
	"io"
	"sync/atomic"
	"time"

	"minion/internal/buf"
	"minion/internal/rt"
	"minion/internal/tcp"
	"minion/internal/ucobs"
	"minion/internal/utcp"
	"minion/internal/utls"
	"minion/internal/wire"
)

// The uTCP protocol stacks run over real sockets by hosting the paper's
// uTCP machinery in userspace on a UDP substrate: every uTCP segment
// travels as one UDP datagram (internal/utcp's packet codec), so the
// kernel never reorders or delays delivery and SO_UNORDERED semantics —
// immediate out-of-order delivery, send-side priorities — survive contact
// with a real network. Dial and Listen accept ProtoUCOBSuTCP and
// ProtoUTLSuTCP on "udp" networks; on "tcp" networks those stacks still
// return ErrSimOnly, because kernel TCP cannot deliver out of order.

// Transport identifies the real-socket substrate a negotiated protocol
// stack rides — the network argument to pass to Dial/Listen.
type Transport int

const (
	// TransportTCP is a kernel TCP socket ("tcp" networks): uCOBS/uTLS
	// framing over an ordinary byte stream.
	TransportTCP Transport = iota
	// TransportUDP is a UDP socket ("udp" networks): the plain shim
	// (ProtoUDP) or userspace uTCP carried datagram-per-segment.
	TransportUDP
)

// Network returns the Dial/Listen network string for the transport.
func (t Transport) Network() string {
	if t == TransportUDP {
		return "udp"
	}
	return "tcp"
}

func (t Transport) String() string { return t.Network() }

// NegotiateTransport picks the best protocol stack this library can dial
// today, together with the substrate to dial it on. It extends Negotiate
// with deployment reality: the uTCP stacks need no kernel support when
// the path lets UDP through (they ride the userspace uTCP-over-UDP
// substrate), but on UDP-hostile or DPI-scrutinized paths they cannot run
// at all and degrade to their kernel-TCP siblings — unlike Negotiate,
// which answers the paper's question of what the endpoints would run if
// uTCP kernels shipped (and is pinned to keep answering it that way).
func NegotiateTransport(prefs Preferences, path PathConstraints) (Protocol, Transport) {
	udpOK := !path.UDPBlocked && !path.TCPOnly443 && !path.DPIValidatesHandshake
	if udpOK && path.PeerSupportsUTCP {
		if prefs.RequireSecure {
			return ProtoUTLSuTCP, TransportUDP
		}
		if !prefs.RequireReliable && prefs.PreferUnordered {
			return ProtoUDP, TransportUDP
		}
		return ProtoUCOBSuTCP, TransportUDP
	}
	switch p := Negotiate(prefs, path); p {
	case ProtoUDP:
		return p, TransportUDP
	case ProtoUCOBSuTCP:
		return ProtoUCOBSTCP, TransportTCP
	case ProtoUTLSuTCP:
		return ProtoUTLSTCP, TransportTCP
	default:
		return p, TransportTCP
	}
}

// udpNetwork reports whether network names a UDP socket family.
func udpNetwork(network string) bool {
	switch network {
	case "udp", "udp4", "udp6":
		return true
	}
	return false
}

// utcpCloseLinger bounds a graceful uTCP close: if the FIN handshake has
// not completed this long after Close, the connection is aborted (RST) so
// its socket and loop are always reclaimed.
const utcpCloseLinger = 3 * time.Second

// dialUTCP opens a userspace uTCP connection over a connected UDP socket
// and stacks the protocol's framing on it.
func (dc DialConfig) dialUTCP(proto Protocol, network, addr string) (Conn, error) {
	cli, err := utcp.Dial(network, addr, dc.TCPConfig.tcpConfig(true), wire.UDPConfig{
		SockSendBufBytes: dc.SockSendBufBytes,
		SockRecvBufBytes: dc.SockRecvBufBytes,
		DialTimeout:      dc.Timeout,
	})
	if err != nil {
		return nil, err
	}
	c := newUTCPConn(cli, proto, dc.TCPConfig, true, cli.Close)
	if dc.Timeout > 0 {
		// Bound the uTCP handshake too: a peer that never answers the SYN
		// would otherwise retry until the connection's own give-up timer.
		w := c.(*utcpConn)
		cli.Loop().Schedule(dc.Timeout, func() {
			if w.tc != nil && w.tc.State() == tcp.StateSynSent {
				w.tc.Abort()
			}
		})
	}
	return c, nil
}

// utcpTransport is the loop surface utcp.Client and utcp.Endpoint share:
// a loop-confined uTCP connection plus the executor to reach it on.
type utcpTransport interface {
	Conn() *tcp.Conn
	Loop() *rt.Loop
	Do(fn func()) bool
	Post(fn func()) bool
}

// newUTCPConn stacks the protocol's framing layer on a userspace uTCP
// connection, exactly as newWireConn does on a kernel stream. release
// reclaims the socket resources (dialed socket + loop, or the listener's
// demux entry) and runs once, after the ARQ reaches its terminal state.
func newUTCPConn(tr utcpTransport, proto Protocol, cfg TCPConfig, isClient bool, release func()) Conn {
	budget := cfg.SendBufBytes
	if budget == 0 {
		budget = 256 * 1024 // tcp.Config default send buffer
	}
	w := &utcpConn{tr: tr, release: release, asyncBudget: int64(budget)}
	if !tr.Do(func() {
		w.tc = tr.Conn()
		switch proto {
		case ProtoUCOBSuTCP:
			w.inner = ucobsConn{ucobs.New(w.tc)}
		case ProtoUTLSuTCP:
			ucfg := utls.Config{ExplicitRecNum: cfg.ExplicitRecNum, Real: cfg.TLS.handshake()}
			if isClient {
				w.inner = utlsConn{utls.Client(w.tc, ucfg)}
			} else {
				w.inner = utlsConn{utls.Server(w.tc, ucfg)}
			}
		}
		// The framing layer owns OnReadable; the adapter owns OnWritable
		// (its TrySend flush pump) and OnClose (terminal-state fan-out).
		w.tc.OnWritable(w.flushAsync)
		w.tc.OnClose(w.onTeardown)
	}) {
		// Loop already gone (listener closing under us): a dead connection.
		w.termErr = ErrConnClosed
		if release != nil {
			release()
		}
	}
	return w
}

// utcpConn adapts a loop-confined uTCP framing stack to the
// goroutine-safe Conn interface — the userspace-uTCP sibling of wireConn,
// with the same TrySend budget/queue machinery and OnResult/OnConnError
// contracts.
type utcpConn struct {
	tr      utcpTransport
	tc      *tcp.Conn
	inner   Conn
	release func() // loop-confined hand-off; invoked exactly once

	asyncBudget int64
	asyncBytes  atomic.Int64
	asyncQ      []asyncMsg // loop-confined

	// Loop-confined lifecycle state.
	closing bool
	dead    bool
	onError func(error)
	termErr error
}

// onTeardown runs on the loop when the uTCP state machine reaches its
// terminal state: graceful close completion, RST, or timeout. It maps the
// transport cause onto the public error vocabulary, fails queued TrySends
// exactly once, notifies OnConnError, and releases the socket.
func (w *utcpConn) onTeardown(err error) {
	w.dead = true
	switch {
	case err == nil, errors.Is(err, tcp.ErrClosed), errors.Is(err, io.EOF):
		err = ErrConnClosed
	case errors.Is(err, tcp.ErrTimeout):
		err = ErrTimeout
	default:
		err = ErrConnClosed
	}
	w.failAsync(err)
	w.reportError(err)
	if r := w.release; r != nil {
		w.release = nil
		// Socket teardown joins the loop (reader hand-off, drain barriers),
		// so it cannot run inline on the loop itself.
		go r()
	}
}

func (w *utcpConn) Send(msg []byte, opt Options) error {
	var err error
	if !w.tr.Do(func() {
		if w.inner == nil || w.closing {
			err = ErrConnClosed
			return
		}
		err = w.inner.Send(msg, opt)
	}) {
		return ErrConnClosed
	}
	return err
}

// TrySend implements the non-blocking relay-safe send: copy, reserve
// budget, post onto the connection's loop. Identical contract to
// wireConn.TrySend.
func (w *utcpConn) TrySend(msg []byte, opt Options) error {
	n := int64(len(msg))
	if w.asyncBytes.Add(n) > w.asyncBudget {
		w.asyncBytes.Add(-n)
		return ErrWouldBlock
	}
	b := buf.From(msg)
	if !w.tr.Post(func() { w.asyncDeliver(b, opt) }) {
		w.asyncBytes.Add(-n)
		b.Release()
		return ErrConnClosed
	}
	return nil
}

// asyncDeliver runs on the loop, preserving TrySend order.
func (w *utcpConn) asyncDeliver(b *buf.Buffer, opt Options) {
	if w.inner == nil || w.closing || w.dead {
		w.asyncBytes.Add(-int64(b.Len()))
		b.Release()
		if opt.OnResult != nil {
			opt.OnResult(ErrConnClosed)
		}
		return
	}
	if len(w.asyncQ) > 0 {
		w.asyncQ = append(w.asyncQ, asyncMsg{b, opt})
		return
	}
	err := w.inner.Send(b.Bytes(), opt)
	if errors.Is(err, ErrWouldBlock) {
		w.asyncQ = append(w.asyncQ, asyncMsg{b, opt})
		return
	}
	w.asyncBytes.Add(-int64(b.Len()))
	b.Release()
	if opt.OnResult != nil {
		opt.OnResult(err)
	}
}

// flushAsync runs on the loop on every send-buffer-writable edge: the
// retry pump for queued TrySend datagrams.
func (w *utcpConn) flushAsync() {
	for len(w.asyncQ) > 0 {
		m := w.asyncQ[0]
		err := w.inner.Send(m.b.Bytes(), m.opt)
		if errors.Is(err, ErrWouldBlock) {
			return // the next writable edge resumes
		}
		w.asyncQ[0] = asyncMsg{}
		w.asyncQ = w.asyncQ[1:]
		w.asyncBytes.Add(-int64(m.b.Len()))
		m.b.Release()
		if m.opt.OnResult != nil {
			m.opt.OnResult(err)
		}
	}
}

func (w *utcpConn) Recv() (msg []byte, ok bool) {
	w.tr.Do(func() {
		if w.inner != nil {
			msg, ok = w.inner.Recv()
		}
	})
	return
}

func (w *utcpConn) OnMessage(fn func(msg []byte)) {
	w.tr.Do(func() {
		if w.inner == nil {
			return
		}
		w.inner.OnMessage(fn)
		if fn == nil {
			return
		}
		// Flush datagrams that arrived before registration, atomically with
		// it, in arrival order — same contract as wireConn.OnMessage.
		for {
			m, ok := w.inner.Recv()
			if !ok {
				return
			}
			fn(m)
		}
	})
}

func (w *utcpConn) Close() {
	w.tr.Do(func() {
		if w.closing || w.inner == nil {
			return
		}
		w.closing = true
		w.inner.Close()
		w.failAsync(ErrConnClosed)
		if !w.dead {
			// Bound the FIN handshake: a vanished peer must not pin the
			// socket and loop forever.
			w.tr.Loop().Schedule(utcpCloseLinger, func() {
				if !w.dead {
					w.tc.Abort()
				}
			})
		}
	})
}

// reportError latches the first terminal cause and delivers it to the
// OnConnError observer exactly once. Runs on the loop.
func (w *utcpConn) reportError(err error) {
	if w.termErr == nil {
		w.termErr = err
	}
	if w.onError != nil {
		fn := w.onError
		w.onError = nil
		fn(w.termErr)
	}
}

// failAsync drops every queued TrySend datagram with err, reporting each
// through its OnResult exactly once. Runs on the loop.
func (w *utcpConn) failAsync(err error) {
	for i, m := range w.asyncQ {
		w.asyncBytes.Add(-int64(m.b.Len()))
		m.b.Release()
		if m.opt.OnResult != nil {
			m.opt.OnResult(err)
		}
		w.asyncQ[i] = asyncMsg{}
	}
	w.asyncQ = w.asyncQ[:0]
}

// Inner returns the framing-layer connection for instrumentation; touch
// it only on the connection's loop (via the transport's Do).
func (w *utcpConn) Inner() Conn { return w.inner }
