// DPI traversal tests: Minion uTLS streams must pass a middlebox that
// validates the byte stream with a stock TLS record parser — the
// hostile-network scenario that motivates uTLS (§3.2, §6). The inspector
// (netem.TLSDPI) reassembles each direction and kills flows on the first
// record a stock parser would reject.
package minion

import (
	"fmt"
	"testing"
	"time"

	"minion/internal/netem"
	"minion/internal/sim"
	"minion/internal/tcp"
	"minion/internal/tlshake"
)

// dpiPath builds a unidirectional path: TLS DPI first (it sees the
// sender's original segment stream), then a link with the given config.
func dpiPath(s *sim.Simulator, cfg netem.LinkConfig) (*netem.TLSDPI, netem.Element) {
	dpi := netem.NewTLSDPI(tcp.DPIView)
	return dpi, netem.Chain(dpi, netem.NewLink(s, cfg))
}

// TestDPIPassesUTLSRealHandshake is the acceptance gate: a genuine
// TLS 1.2 handshake followed by out-of-order datagram delivery over lossy
// uTCP, with a stock-parser DPI on both directions. Every record —
// handshake, ChangeCipherSpec, application data, retransmissions — must
// pass; one violation kills the flow and fails the test.
func TestDPIPassesUTLSRealHandshake(t *testing.T) {
	cert, pool, err := tlshake.SelfSigned("minion.test")
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(99)
	lossy := netem.LinkConfig{
		Rate: 10_000_000, Delay: 10 * time.Millisecond, QueueBytes: 1 << 30,
		Loss: netem.BernoulliLoss{P: 0.05},
	}
	clean := netem.LinkConfig{Rate: 10_000_000, Delay: 10 * time.Millisecond, QueueBytes: 1 << 30}
	dpiAB, pathAB := dpiPath(s, lossy)
	dpiBA, pathBA := dpiPath(s, clean)

	pair := NewPair(s, ProtoUTLSuTCP, TCPConfig{
		NoDelay: true,
		TLS:     &TLSConfig{Certificate: &cert, RootCAs: pool, ServerName: "minion.test"},
	}, pathAB, pathBA)

	var got, back int
	pair.B.OnMessage(func(m []byte) {
		got++
		pair.B.Send(m, Options{}) // echo through the reverse-direction DPI
	})
	pair.A.OnMessage(func(m []byte) { back++ })
	s.RunUntil(5 * time.Second)

	utlsB, _ := UTLSOf(pair.B)
	if !utlsB.Ready() {
		t.Fatalf("TLS 1.2 handshake did not complete through the DPI: %v", utlsB.HandshakeErr())
	}
	const n = 200
	sent := 0
	var pump func()
	pump = func() {
		for sent < n {
			if pair.A.Send([]byte(fmt.Sprintf("dpi-%04d-%s", sent, string(make([]byte, 150)))), Options{}) != nil {
				return
			}
			sent++
		}
	}
	pair.TCPA.OnWritable(pump)
	s.Schedule(0, pump)
	s.RunFor(2 * time.Minute)

	if got != n || back != n {
		t.Fatalf("delivered %d/%d forward, %d/%d echoes", got, n, back, n)
	}
	for dir, dpi := range map[string]*netem.TLSDPI{"A→B": dpiAB, "B→A": dpiBA} {
		st := dpi.Stats()
		if st.Violations != 0 || st.KilledFlows != 0 {
			t.Fatalf("%s DPI rejected uTLS records: %+v", dir, st)
		}
		if st.Records == 0 {
			t.Fatalf("%s DPI validated no records — inspector not on-path", dir)
		}
		t.Logf("%s DPI: %+v", dir, st)
	}
	if st := utlsB.Stats(); st.DeliveredOOO == 0 {
		t.Error("no out-of-order deliveries — the unordered trick did not engage through the DPI")
	}
}

// TestDPIPassesUTLSCompatHandshake: even the simulated compat handshake's
// records are well-formed TLS, so record-shape DPI passes that mode too.
func TestDPIPassesUTLSCompatHandshake(t *testing.T) {
	s := sim.New(7)
	clean := netem.LinkConfig{Rate: 10_000_000, Delay: 5 * time.Millisecond, QueueBytes: 1 << 30}
	dpiAB, pathAB := dpiPath(s, clean)
	_, pathBA := dpiPath(s, clean)
	pair := NewPair(s, ProtoUTLSTCP, TCPConfig{NoDelay: true}, pathAB, pathBA)
	got := 0
	pair.B.OnMessage(func(m []byte) { got++ })
	s.RunUntil(time.Second)
	for i := 0; i < 50; i++ {
		if err := pair.A.Send([]byte(fmt.Sprintf("compat-%02d", i)), Options{}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	s.RunFor(30 * time.Second)
	if got != 50 {
		t.Fatalf("delivered %d/50", got)
	}
	if st := dpiAB.Stats(); st.Violations != 0 || st.Records == 0 {
		t.Fatalf("DPI stats: %+v", st)
	}
}

// TestDPIKillsUCOBS: the inspector is not vacuous — a uCOBS stream (TCP
// wire-compatible, but not TLS) is cut on its first bytes.
func TestDPIKillsUCOBS(t *testing.T) {
	s := sim.New(3)
	clean := netem.LinkConfig{Rate: 10_000_000, Delay: 5 * time.Millisecond, QueueBytes: 1 << 30}
	dpiAB, pathAB := dpiPath(s, clean)
	_, pathBA := dpiPath(s, clean)
	pair := NewPair(s, ProtoUCOBSTCP, TCPConfig{NoDelay: true}, pathAB, pathBA)
	got := 0
	pair.B.OnMessage(func(m []byte) { got++ })
	s.RunUntil(time.Second)
	pair.A.Send([]byte("cobs framed datagram, not a TLS record"), Options{})
	s.RunFor(30 * time.Second)
	if got != 0 {
		t.Fatalf("uCOBS datagrams traversed a TLS-validating DPI (%d delivered)", got)
	}
	if st := dpiAB.Stats(); st.Violations == 0 || st.KilledFlows == 0 {
		t.Fatalf("DPI failed to kill the uCOBS flow: %+v", st)
	}
}
