//go:build !race

package minion

const raceEnabled = false
