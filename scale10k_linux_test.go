//go:build linux

package minion

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// testRaiseFDs lifts RLIMIT_NOFILE toward need and returns the usable
// soft limit. Both sides of every loopback connection live in this
// process (two sockets each), so a 10k-connection test wants ~20k
// descriptors; CI runners and dev boxes commonly boot with a 1024 soft
// limit under a much higher hard limit, which an unprivileged process
// may always raise to.
func testRaiseFDs(need uint64) uint64 {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 1024
	}
	if lim.Cur >= need {
		return lim.Cur
	}
	try := lim
	try.Cur = need
	if try.Max < need {
		try.Max = need // only root / CAP_SYS_RESOURCE may grow the hard limit
	}
	if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &try) == nil {
		return try.Cur
	}
	if lim.Max > lim.Cur {
		try = lim
		try.Cur = lim.Max
		if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &try) == nil {
			return try.Cur
		}
	}
	return lim.Cur
}

// TestPollEcho10k is the c10k smoke proof for the readiness-driven
// substrate: ten thousand concurrent connections multiplexed over a
// handful of poll-mode loops per side, every connection's echoes
// arriving strictly in order, with the process's goroutine count pinned
// — independent of the connection count. Scaled down under the race
// detector and to the fd budget the environment actually grants;
// skipped under -short.
func TestPollEcho10k(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale real-socket test")
	}
	nConns := 10000
	if raceEnabled {
		nConns = 2048 // race shadow memory makes 10k conns pathological
	}
	const perConn = 4
	const loops = 4

	// Fit the connection count to the fd budget: 2 fds per loopback
	// connection (both endpoints in-process) plus runtime headroom.
	soft := testRaiseFDs(uint64(2*nConns + 512))
	if budget := (int(soft) - 512) / 2; budget < nConns {
		if budget < 512 {
			t.Skipf("RLIMIT_NOFILE soft limit %d leaves room for only %d conns", soft, budget)
		}
		t.Logf("fd limit %d clamps the test to %d conns (wanted %d)", soft, budget, nConns)
		nConns = budget
	}

	sg := NewLoopGroupMode(loops, LoopPoll)
	defer sg.Close()
	ln, err := ListenConfig{TCPConfig: TCPConfig{NoDelay: true}, Group: sg}.Listen(ProtoUCOBSTCP, "tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()

	var srvMu sync.Mutex
	var srvConns []Conn
	defer func() {
		srvMu.Lock()
		defer srvMu.Unlock()
		for _, c := range srvConns {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			srvMu.Lock()
			srvConns = append(srvConns, c)
			srvMu.Unlock()
			c.OnMessage(func(msg []byte) { c.Send(msg, Options{}) })
		}
	}()

	cg := NewLoopGroupMode(loops, LoopPoll)
	defer cg.Close()
	dc := DialConfig{TCPConfig: TCPConfig{NoDelay: true}, Group: cg}

	// Goroutine baseline: everything structural (groups, loops, pollers,
	// accept plumbing) exists by now; only the dials follow.
	gBase := runtime.NumGoroutine()

	type client struct {
		c    Conn
		next atomic.Int32 // expected echo sequence number
	}
	clients := make([]client, nConns)
	defer func() {
		for i := range clients {
			if clients[i].c != nil {
				clients[i].c.Close()
			}
		}
	}()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 128)
	var dialErr atomic.Value
	for i := range clients {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			c, err := dc.Dial(ProtoUCOBSTCP, "tcp", ln.Addr().String())
			if err != nil {
				dialErr.Store(fmt.Errorf("dial %d: %w", i, err))
				return
			}
			clients[i].c = c
		}(i)
	}
	wg.Wait()
	if err, ok := dialErr.Load().(error); ok {
		t.Fatal(err)
	}

	// The load-bearing claim: goroutine count at full load is a property
	// of the loop count, not the connection count. The slack absorbs
	// runtime/test scaffolding (timers, the accept goroutine, stragglers
	// from the dial pool), not per-connection growth — at 10k conns even
	// one goroutine per hundred connections would blow through it.
	gFull := runtime.NumGoroutine()
	if gFull > gBase+32 {
		t.Errorf("goroutines grew %d -> %d across %d dials: per-connection goroutines in poll mode", gBase, gFull, nConns)
	}

	// Strict per-connection ordering: each echo must carry exactly the
	// next sequence number for that connection, and each arrival releases
	// the next send.
	var done sync.WaitGroup
	done.Add(nConns)
	var failed atomic.Value
	for i := range clients {
		i := i
		cl := &clients[i]
		cl.c.OnMessage(func(msg []byte) {
			seq := cl.next.Load()
			want := fmt.Sprintf("c%d-m%d", i, seq)
			if string(msg) != want {
				failed.Store(fmt.Errorf("conn %d: echo %q, want %q (ordering broken)", i, msg, want))
				done.Done()
				return
			}
			cl.next.Store(seq + 1)
			if seq+1 == perConn {
				done.Done()
				return
			}
			cl.c.Send([]byte(fmt.Sprintf("c%d-m%d", i, seq+1)), Options{})
		})
	}
	for i := range clients {
		if err := clients[i].c.Send([]byte(fmt.Sprintf("c%d-m0", i)), Options{}); err != nil {
			t.Fatalf("conn %d: seed send: %v", i, err)
		}
	}
	waitDone := make(chan struct{})
	go func() { done.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(4 * time.Minute):
		t.Fatalf("timed out waiting for %d conns x %d echoes", nConns, perConn)
	}
	if err, ok := failed.Load().(error); ok {
		t.Fatal(err)
	}
}
